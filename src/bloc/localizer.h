// The full BLoc pipeline (paper §5): corrected channels -> per-anchor joint
// likelihood -> cross-anchor fusion -> multipath-rejecting peak selection.
//
// The pipeline is split into explicit stages (filter -> correct -> per-anchor
// spectra -> fuse -> score) that operate on a caller-owned
// LocalizerWorkspace, so steady-state localization reuses every buffer
// instead of reallocating per round. LocalizationEngine (bloc/engine.h) runs
// the same stages across a thread pool with bit-identical results.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "bloc/calibration.h"
#include "bloc/corrected_channel.h"
#include "bloc/multipath.h"
#include "bloc/spectra.h"
#include "bloc/steering_plan.h"
#include "dsp/grid2d.h"
#include "net/collector.h"

namespace bloc::core {

struct LocalizerConfig {
  /// Search region; typically the room plus a small margin.
  dsp::GridSpec grid{0.0, 0.0, 6.0, 5.0, 0.075};
  ScoringConfig scoring;
  /// Eq. 17 kernel selection (steering-plan vs reference).
  SpectraConfig spectra;
  /// Use only the first N antennas of each anchor (0 = all) — §8.4.
  std::size_t max_antennas = 0;
  /// Restrict to these data channels (empty = all present) — §8.5/8.6.
  std::vector<std::uint8_t> allowed_channels;
  /// Restrict to these anchors (empty = all; must include the master) — §8.3.
  std::vector<std::uint32_t> allowed_anchors;
  /// Retain the fused likelihood map in the result (costs memory).
  bool keep_map = false;
};

struct LocationResult {
  geom::Vec2 position;
  double score = 0.0;
  std::vector<ScoredPeak> peaks;
  std::size_t bands_used = 0;
  std::size_t anchors_used = 0;
  /// Present when LocalizerConfig::keep_map is set.
  std::shared_ptr<const dsp::Grid2D> fused_map;
};

/// Per-round outcome of the search strategy, written by BuildFusedInto and
/// read by the tests and the obs counters. "Cells" count (cell, anchor)
/// kernel evaluations; exhaustive rounds evaluate cells x anchors of them.
/// Why a coarse-to-fine round ran exhaustively instead.
enum class FallbackReason : std::uint8_t {
  kNone = 0,        // the coarse path produced the map
  kConfig,          // inapplicable configuration (kernel/stride/threshold)
  kDegenerate,      // an anchor map or the fused surface had no positive max
  kFractionGuard,   // survivor set too large for pruning to pay
  kBoundViolation,  // a refined value exceeded its block bound (canary)
  kGateMiss,        // the search gate held no usable likelihood mass
};

struct SearchStats {
  /// The coarse-to-fine path produced this round's map.
  bool used_coarse = false;
  /// Coarse search was requested but the round ran exhaustively (bound
  /// violation, degenerate map, or pruning not paying).
  bool fell_back = false;
  FallbackReason fallback_reason = FallbackReason::kNone;
  /// The survivor search ran inside LocalizerWorkspace::gate.
  bool gated = false;
  /// Why an active gate was abandoned this round (kGateMiss when the gated
  /// region was empty or degenerate; the round then re-ran ungated through
  /// the usual coarse -> exhaustive chain).
  FallbackReason gate_fallback = FallbackReason::kNone;
  std::size_t cells_evaluated = 0;
  std::size_t cells_pruned = 0;
  /// Blocks refined at full resolution (core + halo).
  std::size_t regions_refined = 0;
};

/// Scratch of the coarse-to-fine search (DESIGN.md §5e). Indexed by fuse-
/// order slot i and row-major block b; sized on first use and reused.
struct SearchScratch {
  std::vector<double> coarse;      // [i * blocks + b] raw coarse samples
  std::vector<double> bound;       // [i * blocks + b] inflated upper bounds
  std::vector<double> fused_coarse;  // [b] fused coarse samples and bounds
  std::vector<double> anchor_max;  // [i] exact per-anchor fine maximum M_i
  std::vector<double> values;      // per-anchor refined magnitudes
  std::vector<std::uint8_t> block_flag;  // 0 pruned, 1 core, 2 halo
  /// Survivor cells as contiguous row runs (see JointLikelihoodSpansInto);
  /// `values` holds the spans' kernel output concatenated in order.
  std::vector<CellSpan> spans;
  /// Branch-and-bound scratch of the exact per-anchor maximum: candidate
  /// blocks sorted by bound, the current batch's fine cells, each cell's
  /// owning block, and the kernel output.
  std::vector<std::uint32_t> cand;
  std::vector<std::uint32_t> cand_cells;
  std::vector<std::uint32_t> cand_cell_block;
  std::vector<double> cand_values;
  dsp::Grid2D parity_map;  // exhaustive map in parity mode
  SearchStats stats;
};

/// Optional per-round search gate (track-while-localize, DESIGN.md §5g):
/// when active, the coarse-to-fine strategy restricts the survivor search
/// to the blocks intersecting the square of half-width `radius_m` around
/// `center` — typically the Kalman prediction, sized by its covariance.
/// Refined cells keep the exhaustive path's exact per-cell values and the
/// per-anchor normalizers become the exact maxima over the gated region;
/// the map is zero outside. When the gate holds no usable likelihood mass
/// the round re-runs ungated (FallbackReason::kGateMiss is recorded in
/// SearchStats::gate_fallback). Ignored by the exhaustive strategy; with
/// `active` false the pipeline is bit-identical to the ungated path.
struct SearchGate {
  bool active = false;
  geom::Vec2 center;
  double radius_m = 0.0;
};

/// All per-round scratch of the staged pipeline. Owned by the caller (one
/// per engine worker); every buffer is reused round after round, so the
/// steady state performs no heap allocations for a fixed deployment shape.
struct LocalizerWorkspace {
  RoundView view;
  CorrectedChannels corrected;
  /// Anchor indices into `corrected.anchors` in fusion order (ascending
  /// anchor id) — fixed so threaded and serial runs fuse identically.
  std::vector<std::size_t> fuse_order;
  /// Per-anchor map slots (the serial path reuses slot 0; the engine uses
  /// one slot per anchor so maps can be computed concurrently).
  std::vector<dsp::Grid2D> anchor_maps;
  std::vector<SpectraWorkspace> spectra;
  /// Fused map, shared-ptr-owned so keep_map hands the round's map to the
  /// result without a deep copy; the next round allocates a fresh grid only
  /// if the previous one is still referenced by a result.
  std::shared_ptr<dsp::Grid2D> fused;
  /// Coarse-to-fine search scratch and per-round stats.
  SearchScratch search;
  /// Caller-set per-round search gate (see SearchGate). The search never
  /// mutates it; callers that gate one round must clear `active` after.
  SearchGate gate;

  /// Ensures `fused` exists and is not aliased by an outstanding result.
  dsp::Grid2D& EnsureFused() {
    if (!fused || fused.use_count() != 1) {
      fused = std::make_shared<dsp::Grid2D>();
    }
    return *fused;
  }
};

class Localizer {
 public:
  Localizer(Deployment deployment, LocalizerConfig config);

  /// Localizes the tag from one complete measurement round. Returns a
  /// sentinel result (score = 0, anchors_used = 0) when the round is empty
  /// or filtering removed every usable report.
  LocationResult Locate(const net::MeasurementRound& round) const;

  /// Allocation-free variant: all scratch lives in the caller's workspace.
  /// Bit-identical to Locate(round).
  LocationResult Locate(const net::MeasurementRound& round,
                        LocalizerWorkspace& ws) const;

  /// The corrected channels after anchor/band filtering — exposed for
  /// diagnostics and the microbenchmarks.
  CorrectedChannels CorrectedFor(const net::MeasurementRound& round) const;

  /// Builds the fused (cross-anchor) likelihood map without peak selection,
  /// via the configured search strategy. With SearchMode::kCoarseToFine the
  /// result is partial: exact in every refined block, zero elsewhere — peak
  /// selection over it is bit-identical (see DESIGN.md §5e).
  dsp::Grid2D FusedMap(const CorrectedChannels& corrected) const;

  /// Allocation-free map stage over an already-corrected round: (re)derives
  /// ws.fuse_order from ws.corrected and runs the configured search
  /// strategy into ws.EnsureFused(). The map-stage body of Locate, exposed
  /// for the benchmarks.
  void FusedMapInto(LocalizerWorkspace& ws) const;

  // --- Pipeline stages, in execution order (used by LocalizationEngine) ---

  /// Filter: selects the allowed reports/bands of `round` into `view`
  /// (index lists, no copies). Returns false when nothing usable survives —
  /// no reports kept, or the master's report was filtered away — in which
  /// case the caller should emit the sentinel LocationResult.
  bool FilterInto(const net::MeasurementRound& round, RoundView& view) const;

  /// Correct: phase-offset-cancelled channels for the filtered view.
  void CorrectInto(const RoundView& view, CorrectedChannels& out) const;

  /// Fusion order over `corrected.anchors`: ascending anchor id.
  void FuseOrder(const CorrectedChannels& corrected,
                 std::vector<std::size_t>& order) const;

  /// Per-anchor spectra: the peak-normalized joint likelihood map of
  /// `corrected.anchors[anchor_index]`, written into `map` (reshaped to the
  /// configured grid). Safe to call concurrently for distinct anchors with
  /// distinct `map`/`ws`.
  void AnchorMapInto(const CorrectedChannels& corrected,
                     std::size_t anchor_index, dsp::Grid2D& map,
                     SpectraWorkspace& ws) const;

  /// The Eq. 17 evaluation inputs of `corrected.anchors[anchor_index]`
  /// under this deployment/config — what AnchorMapInto evaluates. Exposed
  /// for the search strategies, which evaluate cell subsets directly.
  SpectraInput SpectraInputFor(const CorrectedChannels& corrected,
                               std::size_t anchor_index) const;

  /// Score: multipath-rejecting peak selection over the fused map. When
  /// keep_map is configured the result shares `fused` (no deep copy), so
  /// callers that reuse the grid must re-acquire it via
  /// LocalizerWorkspace::EnsureFused before the next round.
  LocationResult ScoreFused(std::shared_ptr<const dsp::Grid2D> fused,
                            const CorrectedChannels& corrected) const;

  const Deployment& deployment() const { return deployment_; }
  const LocalizerConfig& config() const { return config_; }

  /// The steering-plan cache behind AnchorMapInto: created per Localizer,
  /// shared read-only by every thread that localizes through this instance
  /// (the engine's workers all hit this one cache).
  SteeringPlanCache& plan_cache() const { return *plan_cache_; }

  /// The search strategy the config selected (process-wide singleton).
  const SearchStrategy& search() const { return *search_; }

 private:
  Deployment deployment_;
  LocalizerConfig config_;
  /// allowed_anchors, sorted for binary-search lookup in FilterInto.
  std::vector<std::uint32_t> allowed_anchors_sorted_;
  /// Direct-indexed allowed_channels membership (data channels are uint8).
  std::array<bool, 256> channel_allowed_{};
  bool filter_channels_ = false;
  std::shared_ptr<SteeringPlanCache> plan_cache_;
  const SearchStrategy* search_ = nullptr;
};

}  // namespace bloc::core
