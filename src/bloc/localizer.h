// The full BLoc pipeline (paper §5): corrected channels -> per-anchor joint
// likelihood -> cross-anchor fusion -> multipath-rejecting peak selection.
//
// The pipeline is split into explicit stages (filter -> correct -> per-anchor
// spectra -> fuse -> score) that operate on a caller-owned
// LocalizerWorkspace, so steady-state localization reuses every buffer
// instead of reallocating per round. LocalizationEngine (bloc/engine.h) runs
// the same stages across a thread pool with bit-identical results.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "bloc/calibration.h"
#include "bloc/corrected_channel.h"
#include "bloc/multipath.h"
#include "bloc/spectra.h"
#include "bloc/steering_plan.h"
#include "dsp/grid2d.h"
#include "net/collector.h"

namespace bloc::core {

struct LocalizerConfig {
  /// Search region; typically the room plus a small margin.
  dsp::GridSpec grid{0.0, 0.0, 6.0, 5.0, 0.075};
  ScoringConfig scoring;
  /// Eq. 17 kernel selection (steering-plan vs reference).
  SpectraConfig spectra;
  /// Use only the first N antennas of each anchor (0 = all) — §8.4.
  std::size_t max_antennas = 0;
  /// Restrict to these data channels (empty = all present) — §8.5/8.6.
  std::vector<std::uint8_t> allowed_channels;
  /// Restrict to these anchors (empty = all; must include the master) — §8.3.
  std::vector<std::uint32_t> allowed_anchors;
  /// Retain the fused likelihood map in the result (costs memory).
  bool keep_map = false;
};

struct LocationResult {
  geom::Vec2 position;
  double score = 0.0;
  std::vector<ScoredPeak> peaks;
  std::size_t bands_used = 0;
  std::size_t anchors_used = 0;
  /// Present when LocalizerConfig::keep_map is set.
  std::shared_ptr<const dsp::Grid2D> fused_map;
};

/// All per-round scratch of the staged pipeline. Owned by the caller (one
/// per engine worker); every buffer is reused round after round, so the
/// steady state performs no heap allocations for a fixed deployment shape.
struct LocalizerWorkspace {
  RoundView view;
  CorrectedChannels corrected;
  /// Anchor indices into `corrected.anchors` in fusion order (ascending
  /// anchor id) — fixed so threaded and serial runs fuse identically.
  std::vector<std::size_t> fuse_order;
  /// Per-anchor map slots (the serial path reuses slot 0; the engine uses
  /// one slot per anchor so maps can be computed concurrently).
  std::vector<dsp::Grid2D> anchor_maps;
  std::vector<SpectraWorkspace> spectra;
  /// Fused map, shared-ptr-owned so keep_map hands the round's map to the
  /// result without a deep copy; the next round allocates a fresh grid only
  /// if the previous one is still referenced by a result.
  std::shared_ptr<dsp::Grid2D> fused;

  /// Ensures `fused` exists and is not aliased by an outstanding result.
  dsp::Grid2D& EnsureFused() {
    if (!fused || fused.use_count() != 1) {
      fused = std::make_shared<dsp::Grid2D>();
    }
    return *fused;
  }
};

class Localizer {
 public:
  Localizer(Deployment deployment, LocalizerConfig config);

  /// Localizes the tag from one complete measurement round. Returns a
  /// sentinel result (score = 0, anchors_used = 0) when the round is empty
  /// or filtering removed every usable report.
  LocationResult Locate(const net::MeasurementRound& round) const;

  /// Allocation-free variant: all scratch lives in the caller's workspace.
  /// Bit-identical to Locate(round).
  LocationResult Locate(const net::MeasurementRound& round,
                        LocalizerWorkspace& ws) const;

  /// The corrected channels after anchor/band filtering — exposed for
  /// diagnostics and the microbenchmarks.
  CorrectedChannels CorrectedFor(const net::MeasurementRound& round) const;

  /// Builds the fused (cross-anchor) likelihood map without peak selection.
  dsp::Grid2D FusedMap(const CorrectedChannels& corrected) const;

  // --- Pipeline stages, in execution order (used by LocalizationEngine) ---

  /// Filter: selects the allowed reports/bands of `round` into `view`
  /// (index lists, no copies). Returns false when nothing usable survives —
  /// no reports kept, or the master's report was filtered away — in which
  /// case the caller should emit the sentinel LocationResult.
  bool FilterInto(const net::MeasurementRound& round, RoundView& view) const;

  /// Correct: phase-offset-cancelled channels for the filtered view.
  void CorrectInto(const RoundView& view, CorrectedChannels& out) const;

  /// Fusion order over `corrected.anchors`: ascending anchor id.
  void FuseOrder(const CorrectedChannels& corrected,
                 std::vector<std::size_t>& order) const;

  /// Per-anchor spectra: the peak-normalized joint likelihood map of
  /// `corrected.anchors[anchor_index]`, written into `map` (reshaped to the
  /// configured grid). Safe to call concurrently for distinct anchors with
  /// distinct `map`/`ws`.
  void AnchorMapInto(const CorrectedChannels& corrected,
                     std::size_t anchor_index, dsp::Grid2D& map,
                     SpectraWorkspace& ws) const;

  /// Score: multipath-rejecting peak selection over the fused map. When
  /// keep_map is configured the result shares `fused` (no deep copy), so
  /// callers that reuse the grid must re-acquire it via
  /// LocalizerWorkspace::EnsureFused before the next round.
  LocationResult ScoreFused(std::shared_ptr<const dsp::Grid2D> fused,
                            const CorrectedChannels& corrected) const;

  const Deployment& deployment() const { return deployment_; }
  const LocalizerConfig& config() const { return config_; }

  /// The steering-plan cache behind AnchorMapInto: created per Localizer,
  /// shared read-only by every thread that localizes through this instance
  /// (the engine's workers all hit this one cache).
  SteeringPlanCache& plan_cache() const { return *plan_cache_; }

 private:
  Deployment deployment_;
  LocalizerConfig config_;
  /// allowed_anchors, sorted for binary-search lookup in FilterInto.
  std::vector<std::uint32_t> allowed_anchors_sorted_;
  /// Direct-indexed allowed_channels membership (data channels are uint8).
  std::array<bool, 256> channel_allowed_{};
  bool filter_channels_ = false;
  std::shared_ptr<SteeringPlanCache> plan_cache_;
};

}  // namespace bloc::core
