// BLoc's phase-offset cancellation (paper §5.2, Eq. 7-10).
//
// Measured channels carry e^{j(phi_T - phi_Ri)} garbage that changes on
// every frequency retune. For a slave anchor i, combining the overheard
// tag packet (h-hat_ij), the overheard master response (H-hat_i0) and the
// master's own measurement of the tag (h-hat_00) as
//
//     alpha_ij = h-hat_ij * conj(H-hat_i0) * conj(h-hat_00)
//
// cancels every offset: the result depends only on physical path geometry.
// For the master anchor itself, alpha_0j = h-hat_0j * conj(h-hat_00) — both
// factors share the same phi_T - phi_R0, so offsets cancel and the Eq. 14
// exponent reduces to the d_i0 = 0 case.
#pragma once

#include <cstdint>
#include <vector>

#include "anchor/csi_report.h"
#include "dsp/types.h"
#include "net/collector.h"

namespace bloc::core {

/// A filtered view over one MeasurementRound: index lists selecting the
/// reports and bands to process, with no copies of the CSI payloads. View
/// entries are pooled so a reused RoundView filters round after round
/// without heap allocations once its high-water capacity is reached.
struct RoundView {
  struct ReportView {
    std::size_t report_index = 0;
    std::vector<std::size_t> bands;  // kept indices into the report's bands
  };

  const net::MeasurementRound* round = nullptr;

  /// Starts a fresh (empty) view over `r`; keeps pooled capacity.
  void Begin(const net::MeasurementRound& r);
  /// Selects every report and every band of `r`.
  void AssignAll(const net::MeasurementRound& r);
  /// Appends report `report_index` with an empty band list and returns it.
  ReportView& Append(std::size_t report_index);
  /// Drops the most recently appended report (e.g. all bands filtered).
  void RemoveLast() {
    if (num_reports_ > 0) --num_reports_;
  }

  std::size_t num_reports() const { return num_reports_; }
  const ReportView& View(std::size_t i) const { return pool_[i]; }
  const anchor::CsiReport& Report(std::size_t i) const {
    return round->reports[pool_[i].report_index];
  }
  /// The kept band entry for `data_channel` in report `i`, or nullptr.
  const anchor::BandMeasurement* FindBand(std::size_t i,
                                          std::uint8_t data_channel) const;

 private:
  std::vector<ReportView> pool_;  // only the first num_reports_ are live
  std::size_t num_reports_ = 0;
};

struct AnchorCorrected {
  std::uint32_t anchor_id = 0;
  bool is_master = false;
  /// alpha[antenna][band_index], aligned with CorrectedChannels::band_*.
  std::vector<dsp::CVec> alpha;
};

struct CorrectedChannels {
  /// Bands common to every report in the round, ascending by frequency.
  std::vector<std::uint8_t> band_channels;
  std::vector<double> band_freqs_hz;
  std::vector<AnchorCorrected> anchors;

  std::size_t num_bands() const { return band_freqs_hz.size(); }
};

/// Computes corrected channels for a complete measurement round. Throws if
/// the round has no master report or no common bands.
CorrectedChannels ComputeCorrectedChannels(const net::MeasurementRound& round);

/// In-place variant over a filtered view: writes into `out`, reusing its
/// buffers (allocation-free in steady state for a fixed deployment shape).
/// Same failure modes as ComputeCorrectedChannels.
void ComputeCorrectedChannelsInto(const RoundView& view,
                                  CorrectedChannels& out);

}  // namespace bloc::core
