// BLoc's phase-offset cancellation (paper §5.2, Eq. 7-10).
//
// Measured channels carry e^{j(phi_T - phi_Ri)} garbage that changes on
// every frequency retune. For a slave anchor i, combining the overheard
// tag packet (h-hat_ij), the overheard master response (H-hat_i0) and the
// master's own measurement of the tag (h-hat_00) as
//
//     alpha_ij = h-hat_ij * conj(H-hat_i0) * conj(h-hat_00)
//
// cancels every offset: the result depends only on physical path geometry.
// For the master anchor itself, alpha_0j = h-hat_0j * conj(h-hat_00) — both
// factors share the same phi_T - phi_R0, so offsets cancel and the Eq. 14
// exponent reduces to the d_i0 = 0 case.
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/types.h"
#include "net/collector.h"

namespace bloc::core {

struct AnchorCorrected {
  std::uint32_t anchor_id = 0;
  bool is_master = false;
  /// alpha[antenna][band_index], aligned with CorrectedChannels::band_*.
  std::vector<dsp::CVec> alpha;
};

struct CorrectedChannels {
  /// Bands common to every report in the round, ascending by frequency.
  std::vector<std::uint8_t> band_channels;
  std::vector<double> band_freqs_hz;
  std::vector<AnchorCorrected> anchors;

  std::size_t num_bands() const { return band_freqs_hz.size(); }
};

/// Computes corrected channels for a complete measurement round. Throws if
/// the round has no master report or no common bands.
CorrectedChannels ComputeCorrectedChannels(const net::MeasurementRound& round);

}  // namespace bloc::core
