#include "bloc/localizer.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bloc::core {

namespace {

/// Registry handles for the localization stages, resolved once per process
/// (DESIGN.md §5d). Shared by the serial path and the engine.
struct LocalizerMetrics {
  obs::Counter& rounds = obs::GetCounter("bloc.localizer.rounds");
  obs::Counter& empty_rounds = obs::GetCounter("bloc.localizer.empty_rounds");
  obs::Histogram& filter_us = obs::GetHistogram("bloc.localizer.filter_us");
  obs::Histogram& correct_us = obs::GetHistogram("bloc.localizer.correct_us");
  obs::Histogram& anchor_map_us =
      obs::GetHistogram("bloc.localizer.anchor_map_us");
  obs::Histogram& fuse_us = obs::GetHistogram("bloc.localizer.fuse_us");
  obs::Histogram& score_us = obs::GetHistogram("bloc.localizer.score_us");

  static const LocalizerMetrics& Get() {
    static const LocalizerMetrics metrics;
    return metrics;
  }
};

}  // namespace

Localizer::Localizer(Deployment deployment, LocalizerConfig config)
    : deployment_(std::move(deployment)),
      config_(std::move(config)),
      plan_cache_(std::make_shared<SteeringPlanCache>()) {
  if (deployment_.Master() == nullptr) {
    throw std::invalid_argument("Localizer: deployment has no master anchor");
  }
  if (!config_.grid.Valid()) {
    throw std::invalid_argument("Localizer: invalid grid spec");
  }
  // Build the sorted/direct-indexed filter tables once so FilterInto never
  // linear-scans the allow-lists per report or per band.
  allowed_anchors_sorted_ = config_.allowed_anchors;
  std::sort(allowed_anchors_sorted_.begin(), allowed_anchors_sorted_.end());
  filter_channels_ = !config_.allowed_channels.empty();
  for (const std::uint8_t ch : config_.allowed_channels) {
    channel_allowed_[ch] = true;
  }
  if (!allowed_anchors_sorted_.empty() &&
      !std::binary_search(allowed_anchors_sorted_.begin(),
                          allowed_anchors_sorted_.end(),
                          deployment_.Master()->id)) {
    throw std::invalid_argument(
        "Localizer: allowed_anchors must include the master anchor");
  }
}

bool Localizer::FilterInto(const net::MeasurementRound& round,
                           RoundView& view) const {
  view.Begin(round);
  bool has_master = false;
  const bool filter_anchors = !allowed_anchors_sorted_.empty();
  for (std::size_t i = 0; i < round.reports.size(); ++i) {
    const anchor::CsiReport& r = round.reports[i];
    if (filter_anchors &&
        !std::binary_search(allowed_anchors_sorted_.begin(),
                            allowed_anchors_sorted_.end(), r.anchor_id)) {
      continue;
    }
    RoundView::ReportView& rv = view.Append(i);
    for (std::size_t k = 0; k < r.bands.size(); ++k) {
      if (filter_channels_ && !channel_allowed_[r.bands[k].data_channel]) {
        continue;
      }
      rv.bands.push_back(k);
    }
    if (rv.bands.empty()) {
      view.RemoveLast();
    } else if (r.is_master) {
      has_master = true;
    }
  }
  return view.num_reports() > 0 && has_master;
}

void Localizer::CorrectInto(const RoundView& view,
                            CorrectedChannels& out) const {
  ComputeCorrectedChannelsInto(view, out);
}

void Localizer::FuseOrder(const CorrectedChannels& corrected,
                          std::vector<std::size_t>& order) const {
  order.resize(corrected.anchors.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return corrected.anchors[a].anchor_id <
                            corrected.anchors[b].anchor_id;
                   });
}

void Localizer::AnchorMapInto(const CorrectedChannels& corrected,
                              std::size_t anchor_index, dsp::Grid2D& map,
                              SpectraWorkspace& ws) const {
  const AnchorCorrected& ac = corrected.anchors[anchor_index];
  const AnchorPose* pose = deployment_.Find(ac.anchor_id);
  if (pose == nullptr) {
    throw std::invalid_argument("FusedMap: report from unknown anchor");
  }
  SpectraInput input;
  input.channels = &ac;
  input.geometry = pose->geometry;
  input.master_ref_antenna =
      deployment_.Master()->geometry.AntennaPosition(0);
  input.master_ref_distance =
      deployment_.MasterReferenceDistance(ac.anchor_id);
  input.band_freqs_hz = corrected.band_freqs_hz;
  input.max_antennas = config_.max_antennas;
  map.Reset(config_.grid);
  if (config_.spectra.kernel == LikelihoodKernel::kReference) {
    JointLikelihoodMapInto(input, map, ws);
  } else {
    const auto plan = plan_cache_->GetOrBuild(input, config_.grid,
                                              ws.comb_step);
    JointLikelihoodMapInto(input, *plan, map, ws);
  }
  // Peak-normalize so one near anchor cannot drown the others.
  map.NormalizePeak();
}

LocationResult Localizer::ScoreFused(std::shared_ptr<const dsp::Grid2D> fused,
                                     const CorrectedChannels& corrected) const {
  const Selection sel = SelectLocation(*fused, deployment_, config_.scoring);
  if (sel.peaks.empty()) return LocationResult{};  // degenerate map: sentinel

  LocationResult result;
  result.position = sel.position;
  result.score = sel.peaks.front().score;
  result.peaks = sel.peaks;
  result.bands_used = corrected.num_bands();
  result.anchors_used = corrected.anchors.size();
  if (config_.keep_map) {
    result.fused_map = std::move(fused);
  }
  return result;
}

CorrectedChannels Localizer::CorrectedFor(
    const net::MeasurementRound& round) const {
  RoundView view;
  FilterInto(round, view);
  CorrectedChannels out;
  ComputeCorrectedChannelsInto(view, out);
  return out;
}

dsp::Grid2D Localizer::FusedMap(const CorrectedChannels& corrected) const {
  dsp::Grid2D fused(config_.grid);
  std::vector<std::size_t> order;
  FuseOrder(corrected, order);
  dsp::Grid2D map;
  SpectraWorkspace ws;
  for (std::size_t idx : order) {
    AnchorMapInto(corrected, idx, map, ws);
    fused.Add(map);
  }
  return fused;
}

LocationResult Localizer::Locate(const net::MeasurementRound& round,
                                 LocalizerWorkspace& ws) const {
  const LocalizerMetrics& metrics = LocalizerMetrics::Get();
  obs::TraceSpan round_span("localize.round", "bloc", round.round_id);
  metrics.rounds.Inc();
  {
    obs::TraceSpan span("localize.filter", "bloc");
    obs::ScopedTimer timer(metrics.filter_us);
    if (!FilterInto(round, ws.view)) {
      metrics.empty_rounds.Inc();
      return LocationResult{};
    }
  }
  {
    obs::TraceSpan span("localize.correct", "bloc");
    obs::ScopedTimer timer(metrics.correct_us);
    CorrectInto(ws.view, ws.corrected);
    FuseOrder(ws.corrected, ws.fuse_order);
  }
  if (ws.anchor_maps.empty()) ws.anchor_maps.resize(1);
  if (ws.spectra.empty()) ws.spectra.resize(1);
  dsp::Grid2D& fused = ws.EnsureFused();
  fused.Reset(config_.grid);
  // The serial loop interleaves map computation and fusion, so the fuse
  // stage is timed by accumulation rather than one contiguous span.
  std::uint64_t fuse_ns = 0;
  const bool metrics_on = obs::MetricsEnabled();
  for (std::size_t idx : ws.fuse_order) {
    {
      obs::TraceSpan span("localize.anchor_map", "bloc",
                          ws.corrected.anchors[idx].anchor_id);
      obs::ScopedTimer timer(metrics.anchor_map_us);
      AnchorMapInto(ws.corrected, idx, ws.anchor_maps[0], ws.spectra[0]);
    }
    const std::uint64_t t0 = metrics_on ? obs::NowNs() : 0;
    fused.Add(ws.anchor_maps[0]);
    if (metrics_on) fuse_ns += obs::NowNs() - t0;
  }
  if (metrics_on) metrics.fuse_us.Record(fuse_ns / 1000);
  obs::TraceSpan span("localize.score", "bloc");
  obs::ScopedTimer timer(metrics.score_us);
  return ScoreFused(ws.fused, ws.corrected);
}

LocationResult Localizer::Locate(const net::MeasurementRound& round) const {
  LocalizerWorkspace ws;
  return Locate(round, ws);
}

}  // namespace bloc::core
