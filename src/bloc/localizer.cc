#include "bloc/localizer.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bloc::core {

namespace {

/// Registry handles for the localization stages, resolved once per process
/// (DESIGN.md §5d). Shared by the serial path and the engine.
struct LocalizerMetrics {
  obs::Counter& rounds = obs::GetCounter("bloc.localizer.rounds");
  obs::Counter& empty_rounds = obs::GetCounter("bloc.localizer.empty_rounds");
  obs::Histogram& filter_us = obs::GetHistogram("bloc.localizer.filter_us");
  obs::Histogram& correct_us = obs::GetHistogram("bloc.localizer.correct_us");
  obs::Histogram& anchor_map_us =
      obs::GetHistogram("bloc.localizer.anchor_map_us");
  obs::Histogram& fuse_us = obs::GetHistogram("bloc.localizer.fuse_us");
  obs::Histogram& score_us = obs::GetHistogram("bloc.localizer.score_us");
  // Coarse-to-fine search (DESIGN.md §5e).
  obs::Counter& search_cells_evaluated =
      obs::GetCounter("bloc.search.cells_evaluated");
  obs::Counter& search_cells_pruned =
      obs::GetCounter("bloc.search.cells_pruned");
  obs::Counter& search_regions_refined =
      obs::GetCounter("bloc.search.regions_refined");
  obs::Counter& search_fallbacks = obs::GetCounter("bloc.search.fallbacks");
  obs::Counter& search_gated_rounds =
      obs::GetCounter("bloc.search.gated_rounds");
  obs::Counter& search_gate_misses =
      obs::GetCounter("bloc.search.gate_misses");
  obs::Counter& search_parity_failures =
      obs::GetCounter("bloc.search.parity_failures");
  obs::Histogram& search_coarse_us =
      obs::GetHistogram("bloc.search.coarse_us");
  obs::Histogram& search_refine_us =
      obs::GetHistogram("bloc.search.refine_us");

  static const LocalizerMetrics& Get() {
    static const LocalizerMetrics metrics;
    return metrics;
  }
};

/// The reference strategy: every cell of every anchor map at full
/// resolution, fused in ascending-anchor-id order (the pre-PR 6 behavior).
class ExhaustiveSearch final : public SearchStrategy {
 public:
  SearchMode mode() const override { return SearchMode::kExhaustive; }

  void BuildFusedInto(const Localizer& loc,
                      LocalizerWorkspace& ws) const override {
    const LocalizerMetrics& metrics = LocalizerMetrics::Get();
    ws.search.stats = SearchStats{};
    if (ws.anchor_maps.empty()) ws.anchor_maps.resize(1);
    if (ws.spectra.empty()) ws.spectra.resize(1);
    dsp::Grid2D& fused = ws.EnsureFused();
    fused.Reset(loc.config().grid);
    // The serial loop interleaves map computation and fusion, so the fuse
    // stage is timed by accumulation rather than one contiguous span.
    std::uint64_t fuse_ns = 0;
    const bool metrics_on = obs::MetricsEnabled();
    for (std::size_t idx : ws.fuse_order) {
      {
        obs::TraceSpan span("localize.anchor_map", "bloc",
                            ws.corrected.anchors[idx].anchor_id);
        obs::ScopedTimer timer(metrics.anchor_map_us);
        loc.AnchorMapInto(ws.corrected, idx, ws.anchor_maps[0],
                          ws.spectra[0]);
      }
      const std::uint64_t t0 = metrics_on ? obs::NowNs() : 0;
      fused.Add(ws.anchor_maps[0]);
      if (metrics_on) fuse_ns += obs::NowNs() - t0;
    }
    if (metrics_on) metrics.fuse_us.Record(fuse_ns / 1000);
    const std::size_t cells = fused.data().size() * ws.fuse_order.size();
    ws.search.stats.cells_evaluated = cells;
    metrics.search_cells_evaluated.Inc(cells);
  }
};

/// Hierarchical strategy (DESIGN.md §5e): evaluate a strided coarse level
/// of the steering pyramid (every sample an exact fine-grid value), bound
/// every stride x stride block by the kappa-inflated maximum of its 3x3
/// coarse neighborhood, and refine only the blocks whose fused bound
/// reaches refine_threshold x the best fused sample — plus the best fused
/// block and a halo wide enough to keep every surviving peak's
/// neighborhood and entropy window exact. The exact NormalizePeak
/// divisors come from a separate branch-and-bound descent per anchor
/// (ExactAnchorMax) rather than from refining every max-candidate block.
/// Refined cells carry the exhaustive path's bit-identical values; pruned
/// cells are zero. The fused argmax is always refined (bounds + canary +
/// fallback), and every observed bound violation abandons the round to
/// the exhaustive reference.
class CoarseToFineSearch final : public SearchStrategy {
 public:
  SearchMode mode() const override { return SearchMode::kCoarseToFine; }

  void BuildFusedInto(const Localizer& loc,
                      LocalizerWorkspace& ws) const override {
    const LocalizerMetrics& metrics = LocalizerMetrics::Get();
    bool ok = TryCoarse(loc, ws, ws.gate.active);
    FallbackReason gate_reason = FallbackReason::kNone;
    if (!ok && ws.gate.active) {
      // The gate held no usable likelihood mass: fall back along the
      // existing chain, first the full (ungated) coarse pass, then the
      // exhaustive reference below. The gate reason survives in
      // stats.gate_fallback either way.
      gate_reason = ws.search.stats.fallback_reason;
      metrics.search_gate_misses.Inc();
      ok = TryCoarse(loc, ws, /*use_gate=*/false);
      if (ok) ws.search.stats.gate_fallback = gate_reason;
    }
    if (!ok) {
      // The exhaustive pass resets the stats; keep the recorded reason.
      const FallbackReason reason = ws.search.stats.fallback_reason;
      GetSearchStrategy(SearchMode::kExhaustive).BuildFusedInto(loc, ws);
      ws.search.stats.fell_back = true;
      ws.search.stats.fallback_reason = reason;
      ws.search.stats.gate_fallback = gate_reason;
      metrics.search_fallbacks.Inc();
      return;
    }
    if (ws.search.stats.gated) metrics.search_gated_rounds.Inc();
    // Parity against the full exhaustive map is only meaningful ungated:
    // a gated round deliberately searches the predicted region alone.
    if (loc.config().spectra.search.parity_check && !ws.search.stats.gated) {
      CheckParity(loc, ws);
    }
  }

 private:
  /// Runs the coarse-to-fine round; false means "fall back" (inapplicable
  /// configuration, degenerate map, bound violation, pruning not paying,
  /// or — with use_gate — a gate miss). ws.fused contents are unspecified
  /// on false. With use_gate the survivor search, the per-anchor
  /// normalizers and the refine set are restricted to the blocks
  /// intersecting ws.gate (dilated by the scoring halo); every refined
  /// value keeps the exhaustive path's exact per-cell arithmetic.
  bool TryCoarse(const Localizer& loc, LocalizerWorkspace& ws,
                 bool use_gate) const {
    const LocalizerMetrics& metrics = LocalizerMetrics::Get();
    const LocalizerConfig& cfg = loc.config();
    const SearchConfig& sc = cfg.spectra.search;
    SearchScratch& s = ws.search;
    s.stats = SearchStats{};
    const std::size_t n_anchors = ws.fuse_order.size();
    s.stats.fallback_reason = FallbackReason::kConfig;
    if (n_anchors == 0) return false;
    // Subset evaluation needs precomputed rotors; the reference kernel has
    // none, and stride 1 has nothing to prune.
    if (cfg.spectra.kernel != LikelihoodKernel::kSteeringPlan) return false;
    if (sc.coarse_stride < 2 || sc.bound_inflation < 1.0) return false;
    const double lambda = std::min(sc.refine_threshold, 1.0);
    if (!(lambda > 0.0)) return false;  // nothing prunable
    s.stats.fallback_reason = FallbackReason::kNone;

    if (ws.spectra.empty()) ws.spectra.resize(1);
    SpectraWorkspace& sws = ws.spectra[0];

    // --- Coarse level: exact fine-grid samples, one per block. ---
    std::vector<SpectraInput> inputs(n_anchors);
    std::vector<std::shared_ptr<const SteeringPlan>> plans(n_anchors);
    std::shared_ptr<const SteeringLevel> level;
    // The coarse span/timer cover sampling through survivor selection; they
    // are reset (recorded) before the refine pass starts its own.
    std::optional<obs::TraceSpan> coarse_span;
    coarse_span.emplace("search.coarse", "bloc");
    std::optional<obs::ScopedTimer> coarse_timer;
    coarse_timer.emplace(metrics.search_coarse_us);
    for (std::size_t i = 0; i < n_anchors; ++i) {
      inputs[i] = loc.SpectraInputFor(ws.corrected, ws.fuse_order[i]);
      plans[i] = loc.plan_cache().GetOrBuild(inputs[i], cfg.grid,
                                             sws.comb_step);
      if (i == 0) level = plans[i]->Level(sc.coarse_stride);
    }
    const std::size_t nb = level->num_blocks();
    const std::size_t total_cells = level->fine_cols * level->fine_rows;
    // Halo: peak neighborhoods (radius 2) and entropy windows (radius 3)
    // of any collected peak must be exact, so the core will be dilated by
    // enough block rings to cover the larger radius. Computed up front
    // because the gate's evaluation region needs it too.
    const std::size_t halo_cells = std::max(
        cfg.scoring.entropy_window_radius,
        cfg.scoring.peaks.neighborhood_radius);
    const std::size_t halo =
        (halo_cells + sc.coarse_stride - 1) / sc.coarse_stride;

    // The gate's block rectangles (full grid when ungated): the CORE rect
    // holds the survivor candidates; bounds are trusted on the core
    // dilated by the halo (where DilateCore may still mark blocks); coarse
    // samples are evaluated one further ring out so every trusted bound
    // sees its complete 3x3 neighborhood.
    std::size_t core_c0 = 0, core_c1 = level->bcols - 1;
    std::size_t core_r0 = 0, core_r1 = level->brows - 1;
    if (use_gate) {
      const SearchGate& gate = ws.gate;
      const dsp::GridSpec& grid = cfg.grid;
      if (!(gate.radius_m > 0.0)) {
        s.stats.fallback_reason = FallbackReason::kGateMiss;
        return false;
      }
      const double x0 = gate.center.x - gate.radius_m;
      const double x1 = gate.center.x + gate.radius_m;
      const double y0 = gate.center.y - gate.radius_m;
      const double y1 = gate.center.y + gate.radius_m;
      if (x1 < grid.x_min || x0 > grid.x_max || y1 < grid.y_min ||
          y0 > grid.y_max) {
        s.stats.fallback_reason = FallbackReason::kGateMiss;
        return false;
      }
      const auto block_of = [&](double v, double lo, std::size_t blocks) {
        const double c = std::floor((v - lo) / grid.resolution);
        const double b = std::clamp(c, 0.0, 1e18) /
                         static_cast<double>(sc.coarse_stride);
        return std::min(static_cast<std::size_t>(b), blocks - 1);
      };
      core_c0 = block_of(x0, grid.x_min, level->bcols);
      core_c1 = block_of(x1, grid.x_min, level->bcols);
      core_r0 = block_of(y0, grid.y_min, level->brows);
      core_r1 = block_of(y1, grid.y_min, level->brows);
    }
    const auto dilate_lo = [](std::size_t v, std::size_t by) {
      return v > by ? v - by : 0;
    };
    const auto dilate_hi = [](std::size_t v, std::size_t by,
                              std::size_t max) {
      return std::min(v + by, max);
    };
    // Bounds are trusted on the core + halo rect; samples cover one more.
    const std::size_t bnd_c0 = dilate_lo(core_c0, halo);
    const std::size_t bnd_c1 = dilate_hi(core_c1, halo, level->bcols - 1);
    const std::size_t bnd_r0 = dilate_lo(core_r0, halo);
    const std::size_t bnd_r1 = dilate_hi(core_r1, halo, level->brows - 1);
    const std::size_t ev_c0 = dilate_lo(bnd_c0, 1);
    const std::size_t ev_c1 = dilate_hi(bnd_c1, 1, level->bcols - 1);
    const std::size_t ev_r0 = dilate_lo(bnd_r0, 1);
    const std::size_t ev_r1 = dilate_hi(bnd_r1, 1, level->brows - 1);
    const bool gated = use_gate &&
                       !(ev_c0 == 0 && ev_r0 == 0 &&
                         ev_c1 == level->bcols - 1 &&
                         ev_r1 == level->brows - 1);
    s.stats.gated = gated;

    s.bound.resize(n_anchors * nb);
    s.anchor_max.resize(n_anchors);
    if (gated) {
      // Evaluate only the gate's sample cells and scatter them into the
      // (zeroed) coarse level; unevaluated blocks stay at zero and are
      // excluded from bounds, survivor selection and the max descent.
      s.coarse.assign(n_anchors * nb, 0.0);
      s.cand.clear();
      s.cand_cells.clear();
      for (std::size_t br = ev_r0; br <= ev_r1; ++br) {
        for (std::size_t bc = ev_c0; bc <= ev_c1; ++bc) {
          const std::size_t b = br * level->bcols + bc;
          s.cand.push_back(static_cast<std::uint32_t>(b));
          s.cand_cells.push_back(level->sample_cells[b]);
        }
      }
      s.cand_values.resize(s.cand_cells.size());
      for (std::size_t i = 0; i < n_anchors; ++i) {
        JointLikelihoodCellsInto(inputs[i], *plans[i], s.cand_cells,
                                 s.cand_values.data(), sws);
        double* row = s.coarse.data() + i * nb;
        for (std::size_t t = 0; t < s.cand.size(); ++t) {
          row[s.cand[t]] = s.cand_values[t];
        }
      }
      s.stats.cells_evaluated += n_anchors * s.cand_cells.size();
    } else {
      s.coarse.resize(n_anchors * nb);
      for (std::size_t i = 0; i < n_anchors; ++i) {
        JointLikelihoodCellsInto(inputs[i], *plans[i], level->sample_cells,
                                 s.coarse.data() + i * nb, sws);
      }
      s.stats.cells_evaluated += n_anchors * nb;
    }

    // --- Block upper bounds: kappa x (3x3 coarse-neighborhood max), per
    // anchor in raw magnitude units. ---
    for (std::size_t i = 0; i < n_anchors; ++i) {
      NeighborhoodMax(s.coarse.data() + i * nb, level->bcols, level->brows,
                      sc.bound_inflation, s.bound.data() + i * nb);
    }
    if (gated) {
      // Bounds are only honest where the full 3x3 coarse neighborhood was
      // evaluated — the bnd rect. Zero the rest so neither survivor
      // selection nor the max descent trusts a bound built over missing
      // samples.
      for (std::size_t i = 0; i < n_anchors; ++i) {
        double* row = s.bound.data() + i * nb;
        for (std::size_t br = 0; br < level->brows; ++br) {
          const bool row_in = br >= bnd_r0 && br <= bnd_r1;
          for (std::size_t bc = 0; bc < level->bcols; ++bc) {
            if (!row_in || bc < bnd_c0 || bc > bnd_c1) {
              row[br * level->bcols + bc] = 0.0;
            }
          }
        }
      }
    }

    // --- Survivor selection on the coarse fused surface. The per-anchor
    // divisors here are the coarse maxima Mhat_i <= M_i; the exact M_i come
    // from the refine pass below (a branch-and-bound descent per anchor —
    // the fringy per-anchor surfaces put half the grid within kappa of the
    // anchor maximum, far too much to refine wholesale), so the selection
    // thresholds are only approximate while every refined VALUE is exact. ---
    s.block_flag.assign(nb, 0);
    for (std::size_t i = 0; i < n_anchors; ++i) {
      const double* row = s.coarse.data() + i * nb;
      const double coarse_max = *std::max_element(row, row + nb);
      if (!(coarse_max > 0.0)) {
        s.stats.fallback_reason =
            gated ? FallbackReason::kGateMiss : FallbackReason::kDegenerate;
        return false;
      }
      s.anchor_max[i] = coarse_max;  // Mhat_i, replaced by M_i after refine
    }
    s.fused_coarse.assign(nb, 0.0);
    for (std::size_t b = 0; b < nb; ++b) {
      double f = 0.0;
      for (std::size_t i = 0; i < n_anchors; ++i) {
        f += s.coarse[i * nb + b] / s.anchor_max[i];
      }
      s.fused_coarse[b] = f;
    }
    // Survivor candidates and the fused argmax live in the CORE rect alone
    // (the whole grid when ungated — identical iteration order, so the
    // ungated path stays bit-for-bit the pre-gate behavior).
    std::size_t b_star = 0;
    double f_hat = 0.0;
    for (std::size_t br = core_r0; br <= core_r1; ++br) {
      for (std::size_t bc = core_c0; bc <= core_c1; ++bc) {
        const std::size_t b = br * level->bcols + bc;
        if (s.fused_coarse[b] > f_hat) {
          f_hat = s.fused_coarse[b];
          b_star = b;
        }
      }
    }
    if (!(f_hat > 0.0)) {
      s.stats.fallback_reason =
          gated ? FallbackReason::kGateMiss : FallbackReason::kDegenerate;
      return false;
    }
    // Two fused upper bounds are nearly free; refine when the tighter one
    // still reaches the threshold. The per-anchor sum bounds each term
    // separately; the fused-neighborhood bound exploits the smoothness of
    // the fused surface itself.
    const double floor = lambda * f_hat;
    for (std::size_t br = core_r0; br <= core_r1; ++br) {
      for (std::size_t bc = core_c0; bc <= core_c1; ++bc) {
        const std::size_t b = br * level->bcols + bc;
        if (s.block_flag[b] != 0) continue;
        double uf_sum = 0.0;
        for (std::size_t i = 0; i < n_anchors; ++i) {
          uf_sum += s.bound[i * nb + b] / s.anchor_max[i];
        }
        if (uf_sum < floor) continue;
        if (NeighborhoodMaxAt(s.fused_coarse.data(), level->bcols,
                              level->brows, b) *
                sc.bound_inflation <
            floor) {
          continue;
        }
        s.block_flag[b] = 1;
      }
    }
    s.block_flag[b_star] = 1;  // the best fused sample always refines
    DilateCore(s.block_flag, level->bcols, level->brows, halo);

    // --- Turn the survivor blocks into contiguous row runs. Adjacent
    // survivor blocks in a block row merge into one span per fine row, so
    // the refine kernel reads the plan's rotors in place (dense walk, no
    // gather) — the per-cell refine cost matches the exhaustive kernel. ---
    const std::size_t stride = sc.coarse_stride;
    const std::size_t fine_cols = level->fine_cols;
    s.spans.clear();
    std::size_t span_cells = 0;
    std::size_t refined_blocks = 0;
    // Emitting fine-row-major (rows outer, runs inner) keeps the span list
    // sorted by begin, so the merge below sees every adjacency.
    std::vector<std::pair<std::size_t, std::size_t>> runs;
    for (std::size_t br = 0; br < level->brows; ++br) {
      const std::size_t row0 = br * stride;
      const std::size_t row1 = std::min(row0 + stride, level->fine_rows);
      const std::uint8_t* flags = s.block_flag.data() + br * level->bcols;
      runs.clear();
      std::size_t bc = 0;
      while (bc < level->bcols) {
        if (flags[bc] == 0) {
          ++bc;
          continue;
        }
        std::size_t bc_end = bc;
        while (bc_end < level->bcols && flags[bc_end] != 0) ++bc_end;
        refined_blocks += bc_end - bc;
        runs.emplace_back(bc * stride,
                          std::min(bc_end * stride, fine_cols));
        bc = bc_end;
      }
      for (std::size_t row = row0; row < row1; ++row) {
        for (const auto& [col0, col1] : runs) {
          const auto begin =
              static_cast<std::uint32_t>(row * fine_cols + col0);
          const auto end = static_cast<std::uint32_t>(row * fine_cols + col1);
          // Merge with the previous span when the gap is small: evaluating
          // a few extra exact cells is cheaper than dropping the walk
          // kernel out of its wide vector blocks (fragmented short spans
          // cost ~2.4x per cell). Gap cells are exact fine-grid values like
          // any other refined cell, so correctness is untouched. Exact
          // contiguity (gap 0) chains full-width runs across rows.
          constexpr std::uint32_t kMergeGap = 8;
          const std::uint32_t prev_end =
              s.spans.empty() ? 0 : s.spans.back().begin +
                                        s.spans.back().length;
          if (!s.spans.empty() && begin >= prev_end &&
              begin - prev_end <= kMergeGap) {
            span_cells += end - prev_end;
            s.spans.back().length = end - s.spans.back().begin;
          } else {
            s.spans.push_back({begin, end - begin});
            span_cells += end - begin;
          }
        }
      }
    }
    s.stats.regions_refined = refined_blocks;
    if (static_cast<double>(span_cells) >
        sc.max_refine_fraction * static_cast<double>(total_cells)) {
      s.stats.fallback_reason = FallbackReason::kFractionGuard;
      return false;  // pruning is not paying this round
    }

    coarse_timer.reset();
    coarse_span.reset();

    // --- Refine survivors and fuse, in fuse order, with the exhaustive
    // path's exact per-cell arithmetic (value / M_i, then +=). ---
    obs::TraceSpan refine_span("search.refine", "bloc");
    obs::ScopedTimer refine_timer(metrics.search_refine_us);
    dsp::Grid2D& fused = ws.EnsureFused();
    fused.Reset(cfg.grid);  // zero outside the refined blocks
    double* fused_data = fused.data().data();
    s.values.resize(span_cells);
    for (std::size_t i = 0; i < n_anchors; ++i) {
      JointLikelihoodSpansInto(inputs[i], *plans[i], s.spans,
                               s.values.data(), sws);
      s.stats.cells_evaluated += span_cells;
      if (!CheckSpanBounds(s.spans, s.values, s.bound.data() + i * nb,
                           stride, level->bcols, fine_cols)) {
        s.stats.fallback_reason = FallbackReason::kBoundViolation;
        return false;
      }
      // The exact per-anchor maximum M_i: seed with the best refined value
      // and the best coarse sample (both are exact fine-cell values of this
      // anchor's map, hence certified lower bounds on M_i), then run the
      // branch-and-bound descent over the candidate blocks outside the
      // survivor set. False means a bound was caught lying.
      double m = std::max(*std::max_element(s.values.begin(), s.values.end()),
                          s.anchor_max[i]);
      if (!ExactAnchorMax(inputs[i], *plans[i], *level,
                          s.bound.data() + i * nb, s, m, sws)) {
        s.stats.fallback_reason = FallbackReason::kBoundViolation;
        return false;
      }
      if (!(m > 0.0)) {
        s.stats.fallback_reason = FallbackReason::kDegenerate;
        return false;
      }
      s.anchor_max[i] = m;
      std::size_t off = 0;
      for (const CellSpan& sp : s.spans) {
        const double* __restrict v = s.values.data() + off;
        double* __restrict f = fused_data + sp.begin;
        for (std::size_t t = 0; t < sp.length; ++t) f[t] += v[t] / m;
        off += sp.length;
      }
    }

    const std::size_t exhaustive_cells = total_cells * n_anchors;
    s.stats.cells_pruned =
        exhaustive_cells > s.stats.cells_evaluated
            ? exhaustive_cells - s.stats.cells_evaluated
            : 0;
    s.stats.used_coarse = true;
    metrics.search_cells_evaluated.Inc(s.stats.cells_evaluated);
    metrics.search_cells_pruned.Inc(s.stats.cells_pruned);
    metrics.search_regions_refined.Inc(s.stats.regions_refined);
    return true;
  }

  /// out[b] = inflation x max of `row` over the 3x3 block neighborhood.
  static void NeighborhoodMax(const double* row, std::size_t bcols,
                              std::size_t brows, double inflation,
                              double* out) {
    for (std::size_t br = 0; br < brows; ++br) {
      const std::size_t r0 = br > 0 ? br - 1 : 0;
      const std::size_t r1 = std::min(br + 1, brows - 1);
      for (std::size_t bc = 0; bc < bcols; ++bc) {
        const std::size_t c0 = bc > 0 ? bc - 1 : 0;
        const std::size_t c1 = std::min(bc + 1, bcols - 1);
        double m = 0.0;
        for (std::size_t r = r0; r <= r1; ++r) {
          for (std::size_t c = c0; c <= c1; ++c) {
            m = std::max(m, row[r * bcols + c]);
          }
        }
        out[br * bcols + bc] = inflation * m;
      }
    }
  }

  /// Max of `row` over the 3x3 block neighborhood of block `b` alone.
  static double NeighborhoodMaxAt(const double* row, std::size_t bcols,
                                  std::size_t brows, std::size_t b) {
    const std::size_t br = b / bcols;
    const std::size_t bc = b % bcols;
    const std::size_t r0 = br > 0 ? br - 1 : 0;
    const std::size_t r1 = std::min(br + 1, brows - 1);
    const std::size_t c0 = bc > 0 ? bc - 1 : 0;
    const std::size_t c1 = std::min(bc + 1, bcols - 1);
    double m = 0.0;
    for (std::size_t r = r0; r <= r1; ++r) {
      for (std::size_t c = c0; c <= c1; ++c) {
        m = std::max(m, row[r * bcols + c]);
      }
    }
    return m;
  }

  /// The canary: every refined value must respect its block's upper bound,
  /// or the bounds cannot be trusted for the blocks we did NOT refine.
  /// Spans may wrap fine rows (full-width runs merge), so each chunk stops
  /// at the nearer of the next block boundary and the row end.
  static bool CheckSpanBounds(const std::vector<CellSpan>& spans,
                              const std::vector<double>& values,
                              const double* bound, std::size_t stride,
                              std::size_t bcols, std::size_t fine_cols) {
    std::size_t off = 0;
    for (const CellSpan& sp : spans) {
      const double* v = values.data() + off;
      std::size_t cell = sp.begin;
      std::size_t t = 0;
      while (t < sp.length) {
        const std::size_t row = cell / fine_cols;
        const std::size_t col = cell % fine_cols;
        const std::size_t bc = col / stride;
        const std::size_t chunk = std::min(
            {sp.length - t, (bc + 1) * stride - col, fine_cols - col});
        const double limit = bound[(row / stride) * bcols + bc];
        for (std::size_t u = 0; u < chunk; ++u) {
          if (v[t + u] > limit) return false;
        }
        t += chunk;
        cell += chunk;
      }
      off += sp.length;
    }
    return true;
  }

  /// Blocks per JointLikelihoodCellsInto batch of the M_i descent: enough
  /// to amortize the per-call comb build, small enough that a freshly
  /// raised running max prunes the rest of the list before it is evaluated.
  static constexpr std::size_t kDescentBatchBlocks = 16;

  /// Branch-and-bound exact per-anchor maximum. On entry `m` is a certified
  /// lower bound on M_i (an exact fine-cell value of this anchor's map); on
  /// true-return `m` is exactly M_i, assuming honest block bounds.
  ///
  /// Candidates are the non-survivor blocks whose bound beats `m`, visited
  /// in descending bound order; the descent stops at the first block whose
  /// bound cannot beat the running max. If the true argmax block were still
  /// unvisited at that point, its bound would satisfy m >= bound >= M_i >=
  /// m, pinning m to M_i anyway — so the early stop is exact, not a
  /// heuristic. On the fig9 workloads this touches a handful of blocks
  /// where refining every candidate would touch half the grid (the
  /// per-anchor fringe surfaces hold many near-maximal ridges).
  ///
  /// Returns false when an evaluated cell exceeds its own block's bound
  /// (the same canary as CheckSpanBounds): the bounds cannot be trusted,
  /// so the round must fall back to the exhaustive path.
  static bool ExactAnchorMax(const SpectraInput& input,
                             const SteeringPlan& plan,
                             const SteeringLevel& level, const double* bound,
                             SearchScratch& s, double& m,
                             SpectraWorkspace& sws) {
    const std::size_t nb = level.num_blocks();
    s.cand.clear();
    for (std::size_t b = 0; b < nb; ++b) {
      if (s.block_flag[b] == 0 && bound[b] > m) {
        s.cand.push_back(static_cast<std::uint32_t>(b));
      }
    }
    std::sort(s.cand.begin(), s.cand.end(),
              [bound](std::uint32_t a, std::uint32_t b) {
                return bound[a] > bound[b];
              });
    std::size_t k = 0;
    while (k < s.cand.size() && bound[s.cand[k]] > m) {
      s.cand_cells.clear();
      s.cand_cell_block.clear();
      for (std::size_t taken = 0;
           k < s.cand.size() && taken < kDescentBatchBlocks; ++k, ++taken) {
        const std::uint32_t b = s.cand[k];
        if (bound[b] <= m) break;  // sorted: nothing later can beat m either
        level.AppendBlockCells(b % level.bcols, b / level.bcols,
                               s.cand_cells);
        s.cand_cell_block.resize(s.cand_cells.size(), b);
        ++s.stats.regions_refined;
      }
      if (s.cand_cells.empty()) break;
      s.cand_values.resize(s.cand_cells.size());
      JointLikelihoodCellsInto(input, plan, s.cand_cells,
                               s.cand_values.data(), sws);
      s.stats.cells_evaluated += s.cand_cells.size();
      for (std::size_t t = 0; t < s.cand_values.size(); ++t) {
        if (s.cand_values[t] > bound[s.cand_cell_block[t]]) return false;
        m = std::max(m, s.cand_values[t]);
      }
    }
    return true;
  }

  /// Marks every block within Chebyshev distance `halo` of a core block.
  static void DilateCore(std::vector<std::uint8_t>& flag, std::size_t bcols,
                         std::size_t brows, std::size_t halo) {
    if (halo == 0) return;
    for (std::size_t br = 0; br < brows; ++br) {
      for (std::size_t bc = 0; bc < bcols; ++bc) {
        if (flag[br * bcols + bc] != 1) continue;
        const std::size_t r0 = br > halo ? br - halo : 0;
        const std::size_t r1 = std::min(br + halo, brows - 1);
        const std::size_t c0 = bc > halo ? bc - halo : 0;
        const std::size_t c1 = std::min(bc + halo, bcols - 1);
        for (std::size_t r = r0; r <= r1; ++r) {
          for (std::size_t c = c0; c <= c1; ++c) {
            if (flag[r * bcols + c] == 0) flag[r * bcols + c] = 2;
          }
        }
      }
    }
  }

  /// Parity mode: rebuild the round exhaustively and require the selected
  /// position to be bit-identical. Throws on mismatch (CI turns this into
  /// a red job).
  void CheckParity(const Localizer& loc, LocalizerWorkspace& ws) const {
    const LocalizerMetrics& metrics = LocalizerMetrics::Get();
    SearchScratch& s = ws.search;
    if (ws.anchor_maps.empty()) ws.anchor_maps.resize(1);
    if (ws.spectra.empty()) ws.spectra.resize(1);
    dsp::Grid2D& exhaustive = s.parity_map;
    exhaustive.Reset(loc.config().grid);
    for (std::size_t idx : ws.fuse_order) {
      loc.AnchorMapInto(ws.corrected, idx, ws.anchor_maps[0], ws.spectra[0]);
      exhaustive.Add(ws.anchor_maps[0]);
    }
    const LocationResult coarse = loc.ScoreFused(
        std::make_shared<dsp::Grid2D>(*ws.fused), ws.corrected);
    const LocationResult full = loc.ScoreFused(
        std::make_shared<dsp::Grid2D>(exhaustive), ws.corrected);
    // Position bit-identity is the contract; the peak LIST may legitimately
    // be shorter when refine_threshold sits above the FindPeaks floor.
    if (coarse.position.x != full.position.x ||
        coarse.position.y != full.position.y) {
      metrics.search_parity_failures.Inc();
      throw std::runtime_error(
          "coarse-to-fine parity violation: coarse (" +
          std::to_string(coarse.position.x) + ", " +
          std::to_string(coarse.position.y) + ") vs exhaustive (" +
          std::to_string(full.position.x) + ", " +
          std::to_string(full.position.y) + ")");
    }
  }
};

}  // namespace

const SearchStrategy& GetSearchStrategy(SearchMode mode) {
  static const ExhaustiveSearch exhaustive;
  static const CoarseToFineSearch coarse;
  if (mode == SearchMode::kCoarseToFine) {
    return coarse;
  }
  return exhaustive;
}

Localizer::Localizer(Deployment deployment, LocalizerConfig config)
    : deployment_(std::move(deployment)),
      config_(std::move(config)),
      plan_cache_(std::make_shared<SteeringPlanCache>()),
      search_(&GetSearchStrategy(config_.spectra.search.mode)) {
  if (deployment_.Master() == nullptr) {
    throw std::invalid_argument("Localizer: deployment has no master anchor");
  }
  if (!config_.grid.Valid()) {
    throw std::invalid_argument("Localizer: invalid grid spec");
  }
  // Build the sorted/direct-indexed filter tables once so FilterInto never
  // linear-scans the allow-lists per report or per band.
  allowed_anchors_sorted_ = config_.allowed_anchors;
  std::sort(allowed_anchors_sorted_.begin(), allowed_anchors_sorted_.end());
  filter_channels_ = !config_.allowed_channels.empty();
  for (const std::uint8_t ch : config_.allowed_channels) {
    channel_allowed_[ch] = true;
  }
  if (!allowed_anchors_sorted_.empty() &&
      !std::binary_search(allowed_anchors_sorted_.begin(),
                          allowed_anchors_sorted_.end(),
                          deployment_.Master()->id)) {
    throw std::invalid_argument(
        "Localizer: allowed_anchors must include the master anchor");
  }
}

bool Localizer::FilterInto(const net::MeasurementRound& round,
                           RoundView& view) const {
  view.Begin(round);
  bool has_master = false;
  const bool filter_anchors = !allowed_anchors_sorted_.empty();
  for (std::size_t i = 0; i < round.reports.size(); ++i) {
    const anchor::CsiReport& r = round.reports[i];
    if (filter_anchors &&
        !std::binary_search(allowed_anchors_sorted_.begin(),
                            allowed_anchors_sorted_.end(), r.anchor_id)) {
      continue;
    }
    RoundView::ReportView& rv = view.Append(i);
    for (std::size_t k = 0; k < r.bands.size(); ++k) {
      if (filter_channels_ && !channel_allowed_[r.bands[k].data_channel]) {
        continue;
      }
      rv.bands.push_back(k);
    }
    if (rv.bands.empty()) {
      view.RemoveLast();
    } else if (r.is_master) {
      has_master = true;
    }
  }
  return view.num_reports() > 0 && has_master;
}

void Localizer::CorrectInto(const RoundView& view,
                            CorrectedChannels& out) const {
  ComputeCorrectedChannelsInto(view, out);
}

void Localizer::FuseOrder(const CorrectedChannels& corrected,
                          std::vector<std::size_t>& order) const {
  order.resize(corrected.anchors.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return corrected.anchors[a].anchor_id <
                            corrected.anchors[b].anchor_id;
                   });
}

SpectraInput Localizer::SpectraInputFor(const CorrectedChannels& corrected,
                                        std::size_t anchor_index) const {
  const AnchorCorrected& ac = corrected.anchors[anchor_index];
  const AnchorPose* pose = deployment_.Find(ac.anchor_id);
  if (pose == nullptr) {
    throw std::invalid_argument("FusedMap: report from unknown anchor");
  }
  SpectraInput input;
  input.channels = &ac;
  input.geometry = pose->geometry;
  input.master_ref_antenna =
      deployment_.Master()->geometry.AntennaPosition(0);
  input.master_ref_distance =
      deployment_.MasterReferenceDistance(ac.anchor_id);
  input.band_freqs_hz = corrected.band_freqs_hz;
  input.max_antennas = config_.max_antennas;
  return input;
}

void Localizer::AnchorMapInto(const CorrectedChannels& corrected,
                              std::size_t anchor_index, dsp::Grid2D& map,
                              SpectraWorkspace& ws) const {
  const SpectraInput input = SpectraInputFor(corrected, anchor_index);
  map.Reset(config_.grid);
  if (config_.spectra.kernel == LikelihoodKernel::kReference) {
    JointLikelihoodMapInto(input, map, ws);
  } else {
    const auto plan = plan_cache_->GetOrBuild(input, config_.grid,
                                              ws.comb_step);
    JointLikelihoodMapInto(input, *plan, map, ws);
  }
  // Peak-normalize so one near anchor cannot drown the others.
  map.NormalizePeak();
}

LocationResult Localizer::ScoreFused(std::shared_ptr<const dsp::Grid2D> fused,
                                     const CorrectedChannels& corrected) const {
  const Selection sel = SelectLocation(*fused, deployment_, config_.scoring);
  if (sel.peaks.empty()) return LocationResult{};  // degenerate map: sentinel

  LocationResult result;
  result.position = sel.position;
  result.score = sel.peaks.front().score;
  result.peaks = sel.peaks;
  result.bands_used = corrected.num_bands();
  result.anchors_used = corrected.anchors.size();
  if (config_.keep_map) {
    result.fused_map = std::move(fused);
  }
  return result;
}

CorrectedChannels Localizer::CorrectedFor(
    const net::MeasurementRound& round) const {
  RoundView view;
  FilterInto(round, view);
  CorrectedChannels out;
  ComputeCorrectedChannelsInto(view, out);
  return out;
}

void Localizer::FusedMapInto(LocalizerWorkspace& ws) const {
  FuseOrder(ws.corrected, ws.fuse_order);
  search_->BuildFusedInto(*this, ws);
}

dsp::Grid2D Localizer::FusedMap(const CorrectedChannels& corrected) const {
  LocalizerWorkspace ws;
  ws.corrected = corrected;
  FusedMapInto(ws);
  return std::move(*ws.fused);
}

LocationResult Localizer::Locate(const net::MeasurementRound& round,
                                 LocalizerWorkspace& ws) const {
  const LocalizerMetrics& metrics = LocalizerMetrics::Get();
  obs::TraceSpan round_span("localize.round", "bloc", round.round_id);
  metrics.rounds.Inc();
  {
    obs::TraceSpan span("localize.filter", "bloc");
    obs::ScopedTimer timer(metrics.filter_us);
    if (!FilterInto(round, ws.view)) {
      metrics.empty_rounds.Inc();
      return LocationResult{};
    }
  }
  {
    obs::TraceSpan span("localize.correct", "bloc");
    obs::ScopedTimer timer(metrics.correct_us);
    CorrectInto(ws.view, ws.corrected);
    FuseOrder(ws.corrected, ws.fuse_order);
  }
  search_->BuildFusedInto(*this, ws);
  obs::TraceSpan span("localize.score", "bloc");
  obs::ScopedTimer timer(metrics.score_us);
  return ScoreFused(ws.fused, ws.corrected);
}

LocationResult Localizer::Locate(const net::MeasurementRound& round) const {
  LocalizerWorkspace ws;
  return Locate(round, ws);
}

}  // namespace bloc::core
