#include "bloc/localizer.h"

#include <algorithm>
#include <stdexcept>

namespace bloc::core {

Localizer::Localizer(Deployment deployment, LocalizerConfig config)
    : deployment_(std::move(deployment)), config_(std::move(config)) {
  if (deployment_.Master() == nullptr) {
    throw std::invalid_argument("Localizer: deployment has no master anchor");
  }
  if (!config_.grid.Valid()) {
    throw std::invalid_argument("Localizer: invalid grid spec");
  }
  if (!config_.allowed_anchors.empty()) {
    const auto& allowed = config_.allowed_anchors;
    if (std::find(allowed.begin(), allowed.end(),
                  deployment_.Master()->id) == allowed.end()) {
      throw std::invalid_argument(
          "Localizer: allowed_anchors must include the master anchor");
    }
  }
}

net::MeasurementRound Localizer::Filter(
    const net::MeasurementRound& round) const {
  net::MeasurementRound out;
  out.round_id = round.round_id;
  for (const anchor::CsiReport& r : round.reports) {
    if (!config_.allowed_anchors.empty()) {
      const auto& allowed = config_.allowed_anchors;
      if (std::find(allowed.begin(), allowed.end(), r.anchor_id) ==
          allowed.end()) {
        continue;
      }
    }
    anchor::CsiReport copy;
    copy.anchor_id = r.anchor_id;
    copy.is_master = r.is_master;
    copy.round_id = r.round_id;
    for (const anchor::BandMeasurement& b : r.bands) {
      if (!config_.allowed_channels.empty()) {
        const auto& ch = config_.allowed_channels;
        if (std::find(ch.begin(), ch.end(), b.data_channel) == ch.end()) {
          continue;
        }
      }
      copy.bands.push_back(b);
    }
    if (!copy.bands.empty()) out.reports.push_back(std::move(copy));
  }
  return out;
}

CorrectedChannels Localizer::CorrectedFor(
    const net::MeasurementRound& round) const {
  return ComputeCorrectedChannels(Filter(round));
}

dsp::Grid2D Localizer::FusedMap(const CorrectedChannels& corrected) const {
  dsp::Grid2D fused(config_.grid);
  const AnchorPose* master = deployment_.Master();
  const geom::Vec2 master_ref = master->geometry.AntennaPosition(0);
  for (const AnchorCorrected& ac : corrected.anchors) {
    const AnchorPose* pose = deployment_.Find(ac.anchor_id);
    if (pose == nullptr) {
      throw std::invalid_argument("FusedMap: report from unknown anchor");
    }
    SpectraInput input;
    input.channels = &ac;
    input.geometry = pose->geometry;
    input.master_ref_antenna = master_ref;
    input.master_ref_distance =
        deployment_.MasterReferenceDistance(ac.anchor_id);
    input.band_freqs_hz = corrected.band_freqs_hz;
    input.max_antennas = config_.max_antennas;
    dsp::Grid2D map = JointLikelihoodMap(input, config_.grid);
    // Peak-normalize so one near anchor cannot drown the others.
    map.NormalizePeak();
    fused.Add(map);
  }
  return fused;
}

LocationResult Localizer::Locate(const net::MeasurementRound& round) const {
  const CorrectedChannels corrected = CorrectedFor(round);
  dsp::Grid2D fused = FusedMap(corrected);
  const Selection sel = SelectLocation(fused, deployment_, config_.scoring);

  LocationResult result;
  result.position = sel.position;
  result.score = sel.peaks.front().score;
  result.peaks = sel.peaks;
  result.bands_used = corrected.num_bands();
  result.anchors_used = corrected.anchors.size();
  if (config_.keep_map) {
    result.fused_map = std::make_shared<dsp::Grid2D>(std::move(fused));
  }
  return result;
}

}  // namespace bloc::core
