// Likelihood maps over 2-D space from corrected channels (paper §5.3).
//
// JointLikelihoodMap implements Eq. 17 mapped onto Cartesian coordinates:
// P_i(x) = | sum_j sum_k alpha_ij^{f_k} e^{+j 2 pi f_k / c * D_ij(x)} | with
// D_ij(x) = |x - a_ij| - |x - m_00| - d_i0, where a_ij is antenna j of
// anchor i and m_00 is antenna 0 of the master. Angle-only (Eq. 15) and
// distance-only (Eq. 16) maps are provided for analysis and the Fig. 6
// illustrations.
//
// Two kernels evaluate Eq. 17. The reference kernel (JointLikelihoodMapInto
// without a plan) recomputes distances and rotors per cell; the steering-plan
// kernel (bloc/steering_plan.h) reads them from a precomputed SteeringPlan
// and reduces steady-state work to a vectorized complex MAC. Outputs agree
// cell-for-cell; the reference kernel stays selectable via SpectraConfig for
// parity testing.
#pragma once

#include <span>

#include "anchor/array.h"
#include "bloc/corrected_channel.h"
#include "dsp/aligned.h"
#include "dsp/grid2d.h"
#include "geom/vec2.h"

namespace bloc::core {

class SteeringPlan;
class SteeringPlanCache;

struct SpectraInput {
  /// Corrected channels of one anchor: alpha[antenna][band].
  const AnchorCorrected* channels = nullptr;
  anchor::ArrayGeometry geometry;
  /// Antenna 0 of the master anchor (relative-distance reference).
  geom::Vec2 master_ref_antenna;
  /// d_i0^00 from deployment calibration (0 for the master anchor).
  double master_ref_distance = 0.0;
  std::span<const double> band_freqs_hz;
  /// Use only the first `max_antennas` antennas (0 = all).
  std::size_t max_antennas = 0;
};

/// Which Eq. 17 implementation the localizer runs.
enum class LikelihoodKernel {
  /// Precomputed steering plan + split-complex MAC (the default).
  kSteeringPlan,
  /// Per-cell sqrt/sincos naive loop; kept for parity testing.
  kReference,
};

/// How the likelihood surface is searched for the position estimate.
enum class SearchMode {
  /// Evaluate every cell of every anchor map at full resolution (the
  /// reference behavior).
  kExhaustive,
  /// Hierarchical coarse-to-fine: evaluate a strided coarse level, bound
  /// each block from its coarse neighborhood, refine only the blocks that
  /// can still matter for peak selection (DESIGN.md §5e). Selected
  /// positions are bit-identical to exhaustive as long as the block bounds
  /// hold; violated bounds trigger an automatic exhaustive fallback.
  kCoarseToFine,
};

struct SearchConfig {
  SearchMode mode = SearchMode::kExhaustive;
  /// Coarse decimation: fine cells per block side (>= 2 for coarse mode; a
  /// smaller value falls back to exhaustive). At the paper's 7.5 cm grid,
  /// stride 4 samples every 30 cm; the 3x3 coarse neighborhood then spans
  /// ~0.9 m, wide enough to envelope the fused surface's fringes. Strides
  /// 3 and 4 prune almost identically on the fig9 workload, but 4 halves
  /// the coarse-pass and span-bookkeeping overhead (fewer, larger blocks),
  /// and 5+ starts tripping the bound canary.
  std::size_t coarse_stride = 4;
  /// Safety factor kappa on the 3x3-coarse-neighborhood upper bound.
  /// Per-round worst block-max/neighborhood ratios on the fig9 workload
  /// cluster around 1.05-1.25, with a tail at 1.34/1.43 and one outlier
  /// block near 2.0 (a fine peak landing between coarse samples); 1.45
  /// covers every round that the refine-pass canary would otherwise bounce
  /// to the exhaustive fallback, while the canary plus the position-parity
  /// audit absorb anything beyond. Larger values refine more blocks;
  /// smaller values prune harder at the cost of more canary fallbacks.
  double bound_inflation = 1.45;
  /// Refine every block whose fused upper bound reaches this fraction of
  /// the best fused coarse sample. At or below the FindPeaks floor
  /// (ScoringConfig min_relative_height, 0.2 by default) the refined map
  /// reproduces the full peak list; above it, low peaks may be dropped from
  /// the candidate list while every surviving peak keeps its exact value,
  /// entropy window and score — the argmax cell is always refined, and the
  /// selected positions stay bit-identical on the fig9 workloads (asserted
  /// by the parity tests and the CI parity job).
  double refine_threshold = 0.9;
  /// When the survivor set exceeds this fraction of all cells, pruning is
  /// not paying for its bookkeeping: run the exhaustive path instead.
  double max_refine_fraction = 0.95;
  /// Debug/CI mode: recompute every round exhaustively as well and throw
  /// unless the coarse path selected the bit-identical position.
  bool parity_check = false;
};

struct SpectraConfig {
  LikelihoodKernel kernel = LikelihoodKernel::kSteeringPlan;
  SearchConfig search;
};

/// Scratch buffers for the likelihood-map kernels: the dense 2 MHz band
/// comb, the antenna-position cache and the split-complex accumulators of
/// the steering-plan kernel. Reusing one workspace across calls makes the
/// in-place map variants allocation-free in steady state.
struct SpectraWorkspace {
  std::vector<dsp::CVec> dense;       // comb values per antenna
  std::vector<std::size_t> k_of;      // band index -> comb step
  std::vector<geom::Vec2> ant_pos;    // antenna positions
  double comb_f0 = 0.0;
  double comb_step = 2.0e6;           // BLE channel spacing
  std::size_t comb_steps = 0;
  // Steering-plan kernel scratch (one slot per grid cell).
  dsp::SplitComplexVec cur;    // running rotor of the comb walk
  dsp::SplitComplexVec acc;    // per-antenna band sum
  dsp::SplitComplexVec total;  // cross-antenna coherent sum
  // Gathered rotors of a cell subset (coarse/refine evaluation).
  dsp::SplitComplexVec gbase;
  dsp::SplitComplexVec gstep;
};

class Localizer;
struct LocalizerWorkspace;

/// Strategy for turning one round's corrected channels into the fused
/// likelihood map (the map stage of the pipeline). Implementations live in
/// localizer.cc; instances are stateless process-wide singletons — all
/// per-round scratch stays in the caller's LocalizerWorkspace.
class SearchStrategy {
 public:
  virtual ~SearchStrategy() = default;
  virtual SearchMode mode() const = 0;
  /// Computes the round's fused (cross-anchor) map into ws.EnsureFused().
  /// Requires ws.corrected and ws.fuse_order to be populated (the filter
  /// and correct stages have run). Peak selection over the result is
  /// bit-identical across strategies (see SearchMode::kCoarseToFine).
  virtual void BuildFusedInto(const Localizer& localizer,
                              LocalizerWorkspace& ws) const = 0;
};

/// The singleton strategy implementing `mode`.
const SearchStrategy& GetSearchStrategy(SearchMode mode);

namespace detail {
/// Number of antennas the kernels actually process for `input`.
std::size_t EffectiveAntennas(const SpectraInput& input);
/// Re-indexes the (possibly gappy) band list onto a dense 2 MHz comb so the
/// per-cell band sum becomes a single rotor walk. Writes into the workspace,
/// reusing its buffers.
void BuildComb(const SpectraInput& input, std::size_t antennas,
               SpectraWorkspace& ws);
}  // namespace detail

/// Eq. 17: coherent combination over antennas and bands (steering-plan
/// kernel with a plan built on the fly).
dsp::Grid2D JointLikelihoodMap(const SpectraInput& input,
                               const dsp::GridSpec& spec);

/// In-place reference kernel: overwrites every cell of `grid` (whose spec
/// defines the evaluation points) using `ws` for scratch. Bit-identical to
/// JointLikelihoodMap over the same spec; recomputes all geometry per cell.
void JointLikelihoodMapInto(const SpectraInput& input, dsp::Grid2D& grid,
                            SpectraWorkspace& ws);

/// Eq. 15 mapped to space: per-band Bartlett angle spectra evaluated at the
/// bearing of each grid cell, summed incoherently over bands.
dsp::Grid2D AngleOnlyMap(const SpectraInput& input, const dsp::GridSpec& spec);

/// Eq. 16 mapped to space: per-antenna relative-distance spectra (hyperbolic
/// level sets), summed incoherently over antennas. Runs the steering-plan
/// kernel; pass `cache` to reuse plans across calls (nullptr builds one).
dsp::Grid2D DistanceOnlyMap(const SpectraInput& input,
                            const dsp::GridSpec& spec,
                            SteeringPlanCache* cache = nullptr);

/// The classic 1-D Bartlett angle pseudospectrum at a single band:
/// P(theta) = | sum_j alpha_j e^{+j 2 pi j l sin(theta) f / c} | evaluated on
/// `thetas` (radians, relative to array boresight).
dsp::RVec AngleSpectrum(std::span<const dsp::cplx> per_antenna, double freq_hz,
                        double spacing_m, std::span<const double> thetas);

}  // namespace bloc::core
