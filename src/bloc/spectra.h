// Likelihood maps over 2-D space from corrected channels (paper §5.3).
//
// JointLikelihoodMap implements Eq. 17 mapped onto Cartesian coordinates:
// P_i(x) = | sum_j sum_k alpha_ij^{f_k} e^{+j 2 pi f_k / c * D_ij(x)} | with
// D_ij(x) = |x - a_ij| - |x - m_00| - d_i0, where a_ij is antenna j of
// anchor i and m_00 is antenna 0 of the master. Angle-only (Eq. 15) and
// distance-only (Eq. 16) maps are provided for analysis and the Fig. 6
// illustrations.
//
// Two kernels evaluate Eq. 17. The reference kernel (JointLikelihoodMapInto
// without a plan) recomputes distances and rotors per cell; the steering-plan
// kernel (bloc/steering_plan.h) reads them from a precomputed SteeringPlan
// and reduces steady-state work to a vectorized complex MAC. Outputs agree
// cell-for-cell; the reference kernel stays selectable via SpectraConfig for
// parity testing.
#pragma once

#include <span>

#include "anchor/array.h"
#include "bloc/corrected_channel.h"
#include "dsp/aligned.h"
#include "dsp/grid2d.h"
#include "geom/vec2.h"

namespace bloc::core {

class SteeringPlan;
class SteeringPlanCache;

struct SpectraInput {
  /// Corrected channels of one anchor: alpha[antenna][band].
  const AnchorCorrected* channels = nullptr;
  anchor::ArrayGeometry geometry;
  /// Antenna 0 of the master anchor (relative-distance reference).
  geom::Vec2 master_ref_antenna;
  /// d_i0^00 from deployment calibration (0 for the master anchor).
  double master_ref_distance = 0.0;
  std::span<const double> band_freqs_hz;
  /// Use only the first `max_antennas` antennas (0 = all).
  std::size_t max_antennas = 0;
};

/// Which Eq. 17 implementation the localizer runs.
enum class LikelihoodKernel {
  /// Precomputed steering plan + split-complex MAC (the default).
  kSteeringPlan,
  /// Per-cell sqrt/sincos naive loop; kept for parity testing.
  kReference,
};

struct SpectraConfig {
  LikelihoodKernel kernel = LikelihoodKernel::kSteeringPlan;
};

/// Scratch buffers for the likelihood-map kernels: the dense 2 MHz band
/// comb, the antenna-position cache and the split-complex accumulators of
/// the steering-plan kernel. Reusing one workspace across calls makes the
/// in-place map variants allocation-free in steady state.
struct SpectraWorkspace {
  std::vector<dsp::CVec> dense;       // comb values per antenna
  std::vector<std::size_t> k_of;      // band index -> comb step
  std::vector<geom::Vec2> ant_pos;    // antenna positions
  double comb_f0 = 0.0;
  double comb_step = 2.0e6;           // BLE channel spacing
  std::size_t comb_steps = 0;
  // Steering-plan kernel scratch (one slot per grid cell).
  dsp::SplitComplexVec cur;    // running rotor of the comb walk
  dsp::SplitComplexVec acc;    // per-antenna band sum
  dsp::SplitComplexVec total;  // cross-antenna coherent sum
};

namespace detail {
/// Number of antennas the kernels actually process for `input`.
std::size_t EffectiveAntennas(const SpectraInput& input);
/// Re-indexes the (possibly gappy) band list onto a dense 2 MHz comb so the
/// per-cell band sum becomes a single rotor walk. Writes into the workspace,
/// reusing its buffers.
void BuildComb(const SpectraInput& input, std::size_t antennas,
               SpectraWorkspace& ws);
}  // namespace detail

/// Eq. 17: coherent combination over antennas and bands (steering-plan
/// kernel with a plan built on the fly).
dsp::Grid2D JointLikelihoodMap(const SpectraInput& input,
                               const dsp::GridSpec& spec);

/// In-place reference kernel: overwrites every cell of `grid` (whose spec
/// defines the evaluation points) using `ws` for scratch. Bit-identical to
/// JointLikelihoodMap over the same spec; recomputes all geometry per cell.
void JointLikelihoodMapInto(const SpectraInput& input, dsp::Grid2D& grid,
                            SpectraWorkspace& ws);

/// Eq. 15 mapped to space: per-band Bartlett angle spectra evaluated at the
/// bearing of each grid cell, summed incoherently over bands.
dsp::Grid2D AngleOnlyMap(const SpectraInput& input, const dsp::GridSpec& spec);

/// Eq. 16 mapped to space: per-antenna relative-distance spectra (hyperbolic
/// level sets), summed incoherently over antennas. Runs the steering-plan
/// kernel; pass `cache` to reuse plans across calls (nullptr builds one).
dsp::Grid2D DistanceOnlyMap(const SpectraInput& input,
                            const dsp::GridSpec& spec,
                            SteeringPlanCache* cache = nullptr);

/// The classic 1-D Bartlett angle pseudospectrum at a single band:
/// P(theta) = | sum_j alpha_j e^{+j 2 pi j l sin(theta) f / c} | evaluated on
/// `thetas` (radians, relative to array boresight).
dsp::RVec AngleSpectrum(std::span<const dsp::cplx> per_antenna, double freq_hz,
                        double spacing_m, std::span<const double> thetas);

}  // namespace bloc::core
