// Likelihood maps over 2-D space from corrected channels (paper §5.3).
//
// JointLikelihoodMap implements Eq. 17 mapped onto Cartesian coordinates:
// P_i(x) = | sum_j sum_k alpha_ij^{f_k} e^{+j 2 pi f_k / c * D_ij(x)} | with
// D_ij(x) = |x - a_ij| - |x - m_00| - d_i0, where a_ij is antenna j of
// anchor i and m_00 is antenna 0 of the master. Angle-only (Eq. 15) and
// distance-only (Eq. 16) maps are provided for analysis and the Fig. 6
// illustrations.
#pragma once

#include <span>

#include "anchor/array.h"
#include "bloc/corrected_channel.h"
#include "dsp/grid2d.h"
#include "geom/vec2.h"

namespace bloc::core {

struct SpectraInput {
  /// Corrected channels of one anchor: alpha[antenna][band].
  const AnchorCorrected* channels = nullptr;
  anchor::ArrayGeometry geometry;
  /// Antenna 0 of the master anchor (relative-distance reference).
  geom::Vec2 master_ref_antenna;
  /// d_i0^00 from deployment calibration (0 for the master anchor).
  double master_ref_distance = 0.0;
  std::span<const double> band_freqs_hz;
  /// Use only the first `max_antennas` antennas (0 = all).
  std::size_t max_antennas = 0;
};

/// Scratch buffers for the likelihood-map kernels: the dense 2 MHz band
/// comb and the antenna-position cache. Reusing one workspace across calls
/// makes the in-place map variants allocation-free in steady state.
struct SpectraWorkspace {
  std::vector<dsp::CVec> dense;       // comb values per antenna
  std::vector<std::size_t> k_of;      // band index -> comb step
  std::vector<geom::Vec2> ant_pos;    // antenna positions
  double comb_f0 = 0.0;
  double comb_step = 2.0e6;           // BLE channel spacing
  std::size_t comb_steps = 0;
};

/// Eq. 17: coherent combination over antennas and bands.
dsp::Grid2D JointLikelihoodMap(const SpectraInput& input,
                               const dsp::GridSpec& spec);

/// In-place variant of JointLikelihoodMap: overwrites every cell of `grid`
/// (whose spec defines the evaluation points) using `ws` for scratch.
/// Bit-identical to JointLikelihoodMap over the same spec.
void JointLikelihoodMapInto(const SpectraInput& input, dsp::Grid2D& grid,
                            SpectraWorkspace& ws);

/// Eq. 15 mapped to space: per-band Bartlett angle spectra evaluated at the
/// bearing of each grid cell, summed incoherently over bands.
dsp::Grid2D AngleOnlyMap(const SpectraInput& input, const dsp::GridSpec& spec);

/// Eq. 16 mapped to space: per-antenna relative-distance spectra (hyperbolic
/// level sets), summed incoherently over antennas.
dsp::Grid2D DistanceOnlyMap(const SpectraInput& input,
                            const dsp::GridSpec& spec);

/// The classic 1-D Bartlett angle pseudospectrum at a single band:
/// P(theta) = | sum_j alpha_j e^{+j 2 pi j l sin(theta) f / c} | evaluated on
/// `thetas` (radians, relative to array boresight).
dsp::RVec AngleSpectrum(std::span<const dsp::cplx> per_antenna, double freq_hz,
                        double spacing_m, std::span<const double> thetas);

}  // namespace bloc::core
