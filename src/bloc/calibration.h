// Deployment-time calibration: anchor poses are surveyed once when the
// anchors are installed, giving the localizer the antenna positions and the
// fixed anchor-to-master distances d_i0^00 that Eq. 14 needs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "anchor/array.h"

namespace bloc::core {

struct AnchorPose {
  std::uint32_t id = 0;
  bool is_master = false;
  anchor::ArrayGeometry geometry;
};

struct Deployment {
  std::vector<AnchorPose> anchors;

  const AnchorPose* Master() const;
  const AnchorPose* Find(std::uint32_t id) const;

  /// d_i0^00: distance from antenna 0 of anchor `id` to antenna 0 of the
  /// master anchor (0 for the master itself). Throws if either is missing.
  double MasterReferenceDistance(std::uint32_t id) const;

  /// Ids of all anchors, master first.
  std::vector<std::uint32_t> AnchorIds() const;
};

}  // namespace bloc::core
