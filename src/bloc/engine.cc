#include "bloc/engine.h"

namespace bloc::core {

LocalizationEngine::LocalizationEngine(Deployment deployment,
                                       LocalizerConfig config,
                                       EngineOptions options)
    : localizer_(std::move(deployment), std::move(config)),
      pool_(options.threads),
      workspaces_(pool_.size()) {
  free_workspaces_.reserve(workspaces_.size());
  for (LocalizerWorkspace& ws : workspaces_) free_workspaces_.push_back(&ws);
}

LocationResult LocalizationEngine::Locate(const net::MeasurementRound& round) {
  LocalizerWorkspace& ws = workspaces_[0];
  if (!localizer_.FilterInto(round, ws.view)) return LocationResult{};
  localizer_.CorrectInto(ws.view, ws.corrected);
  localizer_.FuseOrder(ws.corrected, ws.fuse_order);

  const std::size_t n = ws.fuse_order.size();
  if (ws.anchor_maps.size() < n) ws.anchor_maps.resize(n);
  if (ws.spectra.size() < n) ws.spectra.resize(n);
  pool_.ParallelFor(n, [&](std::size_t i, std::size_t) {
    localizer_.AnchorMapInto(ws.corrected, ws.fuse_order[i],
                             ws.anchor_maps[i], ws.spectra[i]);
  });

  // Fusion stays sequential in anchor-id order: floating-point addition is
  // not associative, so summing in completion order would break the
  // bit-identity guarantee with the serial path.
  dsp::Grid2D& fused = ws.EnsureFused();
  fused.Reset(localizer_.config().grid);
  for (std::size_t i = 0; i < n; ++i) fused.Add(ws.anchor_maps[i]);
  return localizer_.ScoreFused(ws.fused, ws.corrected);
}

std::vector<LocationResult> LocalizationEngine::LocateBatch(
    std::span<const net::MeasurementRound> rounds) {
  std::vector<LocationResult> results(rounds.size());
  pool_.ParallelFor(rounds.size(), [&](std::size_t i, std::size_t slot) {
    results[i] = localizer_.Locate(rounds[i], workspaces_[slot]);
  });
  return results;
}

LocalizerWorkspace* LocalizationEngine::AcquireWorkspace() {
  std::lock_guard<std::mutex> lock(workspace_mutex_);
  LocalizerWorkspace* ws = free_workspaces_.back();
  free_workspaces_.pop_back();
  return ws;
}

void LocalizationEngine::ReleaseWorkspace(LocalizerWorkspace* ws) {
  std::lock_guard<std::mutex> lock(workspace_mutex_);
  free_workspaces_.push_back(ws);
}

std::future<void> LocalizationEngine::LocateAsync(
    const net::MeasurementRound& round, LocationResult& out) {
  return pool_.Submit([this, &round, &out] {
    LocalizerWorkspace* ws = AcquireWorkspace();
    try {
      out = localizer_.Locate(round, *ws);
    } catch (...) {
      ReleaseWorkspace(ws);
      throw;  // rethrown to the caller by the future
    }
    ReleaseWorkspace(ws);
  });
}

}  // namespace bloc::core
