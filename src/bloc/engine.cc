#include "bloc/engine.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bloc::core {

namespace {

/// Same registry entries as the serial path in localizer.cc — the registry
/// deduplicates by name, so both paths feed one set of stage histograms.
struct EngineMetrics {
  obs::Counter& rounds = obs::GetCounter("bloc.localizer.rounds");
  obs::Counter& empty_rounds = obs::GetCounter("bloc.localizer.empty_rounds");
  obs::Histogram& filter_us = obs::GetHistogram("bloc.localizer.filter_us");
  obs::Histogram& correct_us = obs::GetHistogram("bloc.localizer.correct_us");
  obs::Histogram& anchor_map_us =
      obs::GetHistogram("bloc.localizer.anchor_map_us");
  obs::Histogram& fuse_us = obs::GetHistogram("bloc.localizer.fuse_us");
  obs::Histogram& score_us = obs::GetHistogram("bloc.localizer.score_us");
  obs::Counter& batches = obs::GetCounter("bloc.engine.batches");
  obs::Histogram& batch_us = obs::GetHistogram("bloc.engine.batch_us");

  static const EngineMetrics& Get() {
    static const EngineMetrics metrics;
    return metrics;
  }
};

}  // namespace

LocalizationEngine::LocalizationEngine(Deployment deployment,
                                       LocalizerConfig config,
                                       EngineOptions options)
    : localizer_(std::move(deployment), std::move(config)),
      pool_(options.threads),
      workspaces_(pool_.size()) {
  free_workspaces_.reserve(workspaces_.size());
  for (LocalizerWorkspace& ws : workspaces_) free_workspaces_.push_back(&ws);
}

LocationResult LocalizationEngine::Locate(const net::MeasurementRound& round) {
  const EngineMetrics& metrics = EngineMetrics::Get();
  obs::TraceSpan round_span("localize.round", "bloc", round.round_id);
  metrics.rounds.Inc();
  LocalizerWorkspace& ws = workspaces_[0];
  {
    obs::TraceSpan span("localize.filter", "bloc");
    obs::ScopedTimer timer(metrics.filter_us);
    if (!localizer_.FilterInto(round, ws.view)) {
      metrics.empty_rounds.Inc();
      return LocationResult{};
    }
  }
  {
    obs::TraceSpan span("localize.correct", "bloc");
    obs::ScopedTimer timer(metrics.correct_us);
    localizer_.CorrectInto(ws.view, ws.corrected);
    localizer_.FuseOrder(ws.corrected, ws.fuse_order);
  }

  // Coarse-to-fine rounds route through the (serial) search strategy: its
  // Stage A/B decisions are sequential by construction, and the pruned
  // refine stage is far below the parallel-map break-even point anyway.
  if (localizer_.config().spectra.search.mode != SearchMode::kExhaustive) {
    localizer_.search().BuildFusedInto(localizer_, ws);
    obs::TraceSpan span("localize.score", "bloc");
    obs::ScopedTimer timer(metrics.score_us);
    return localizer_.ScoreFused(ws.fused, ws.corrected);
  }

  const std::size_t n = ws.fuse_order.size();
  if (ws.anchor_maps.size() < n) ws.anchor_maps.resize(n);
  if (ws.spectra.size() < n) ws.spectra.resize(n);
  pool_.ParallelFor(n, [&](std::size_t i, std::size_t) {
    obs::TraceSpan span("localize.anchor_map", "bloc",
                        ws.corrected.anchors[ws.fuse_order[i]].anchor_id);
    obs::ScopedTimer timer(metrics.anchor_map_us);
    localizer_.AnchorMapInto(ws.corrected, ws.fuse_order[i],
                             ws.anchor_maps[i], ws.spectra[i]);
  });

  // Fusion stays sequential in anchor-id order: floating-point addition is
  // not associative, so summing in completion order would break the
  // bit-identity guarantee with the serial path.
  dsp::Grid2D& fused = ws.EnsureFused();
  fused.Reset(localizer_.config().grid);
  {
    obs::TraceSpan span("localize.fuse", "bloc");
    obs::ScopedTimer timer(metrics.fuse_us);
    for (std::size_t i = 0; i < n; ++i) fused.Add(ws.anchor_maps[i]);
  }
  obs::TraceSpan span("localize.score", "bloc");
  obs::ScopedTimer timer(metrics.score_us);
  return localizer_.ScoreFused(ws.fused, ws.corrected);
}

std::vector<LocationResult> LocalizationEngine::LocateBatch(
    std::span<const net::MeasurementRound> rounds) {
  const EngineMetrics& metrics = EngineMetrics::Get();
  obs::TraceSpan batch_span("localize.batch", "bloc", rounds.size());
  obs::ScopedTimer batch_timer(metrics.batch_us);
  metrics.batches.Inc();
  std::vector<LocationResult> results(rounds.size());
  pool_.ParallelFor(rounds.size(), [&](std::size_t i, std::size_t slot) {
    results[i] = localizer_.Locate(rounds[i], workspaces_[slot]);
  });
  return results;
}

LocalizerWorkspace* LocalizationEngine::AcquireWorkspace() {
  std::lock_guard<std::mutex> lock(workspace_mutex_);
  LocalizerWorkspace* ws = free_workspaces_.back();
  free_workspaces_.pop_back();
  return ws;
}

void LocalizationEngine::ReleaseWorkspace(LocalizerWorkspace* ws) {
  std::lock_guard<std::mutex> lock(workspace_mutex_);
  free_workspaces_.push_back(ws);
}

std::future<void> LocalizationEngine::LocateAsync(
    const net::MeasurementRound& round, LocationResult& out) {
  return pool_.Submit([this, &round, &out] {
    LocalizerWorkspace* ws = AcquireWorkspace();
    try {
      out = localizer_.Locate(round, *ws);
    } catch (...) {
      ReleaseWorkspace(ws);
      throw;  // rethrown to the caller by the future
    }
    ReleaseWorkspace(ws);
  });
}

}  // namespace bloc::core
