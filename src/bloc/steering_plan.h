// Precomputed steering plans for the Eq. 17 likelihood kernels.
//
// For a fixed (grid, anchor geometry, master reference, comb layout) the
// per-cell relative distances D_ij(x) and the base/step phase rotors of the
// comb walk never change between rounds. A SteeringPlan hoists all of that
// out of the hot path once — SpotFi/ArrayTrack-style steering-matrix
// precomputation mapped onto BLoc's Cartesian grid — leaving the steady-state
// kernel a branch-free complex multiply-accumulate over cells x comb steps
// with no sqrt, no sin/cos and no std::complex arithmetic.
//
// Rotors are stored split-complex (separate aligned re[]/im[] arrays, cell
// index contiguous) so the fused MAC+rotate loop auto-vectorizes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "bloc/spectra.h"
#include "dsp/aligned.h"
#include "dsp/grid2d.h"
#include "geom/vec2.h"
#include "obs/metrics.h"

namespace bloc::core {

/// Everything the precomputed geometry terms depend on. Two keys compare
/// equal iff the plans would be identical (exact double compare: any
/// difference rebuilds, which is the safe direction for a cache).
struct SteeringPlanKey {
  dsp::GridSpec grid;
  /// Positions of the active antennas (after max_antennas truncation).
  std::vector<geom::Vec2> antennas;
  geom::Vec2 master_ref;
  double master_ref_distance = 0.0;
  double comb_f0 = 0.0;
  double comb_step = 0.0;

  bool operator==(const SteeringPlanKey&) const = default;
};

/// Builds the key for `input` evaluated on `grid`. Throws when `input` has
/// no bands (comb_f0 would be undefined).
SteeringPlanKey MakeSteeringPlanKey(const SpectraInput& input,
                                    const dsp::GridSpec& spec,
                                    double comb_step = 2.0e6);

/// One coarse level of the steering pyramid: the fine grid decimated into
/// stride x stride blocks. A level owns no rotors — `sample_cells` holds,
/// per block, the row-major fine-grid index of the block's minimum-corner
/// cell, so coarse evaluation gathers straight out of the fine plan's
/// storage and coarse samples are exact fine-cell values.
struct SteeringLevel {
  std::size_t stride = 1;
  std::size_t bcols = 0;  // blocks per row
  std::size_t brows = 0;  // block rows
  std::size_t fine_cols = 0;
  std::size_t fine_rows = 0;
  /// Per block (row-major over the block grid), the fine cell sampled at
  /// the coarse level.
  std::vector<std::uint32_t> sample_cells;

  std::size_t num_blocks() const { return sample_cells.size(); }

  /// Builds the level geometry for `spec` decimated by `stride` (>= 1).
  static SteeringLevel Build(const dsp::GridSpec& spec, std::size_t stride);

  /// Appends the row-major fine-cell indices of block (bc, br) to `out`.
  /// Edge blocks are clipped to the fine grid.
  void AppendBlockCells(std::size_t bc, std::size_t br,
                        std::vector<std::uint32_t>& out) const;
};

/// Immutable per-(anchor, grid, comb) precomputation: for every grid cell x
/// and active antenna j, the relative distance D_j(x) = |x-a_j| - |x-m00| -
/// d_i0 and the unit rotors e^{j 2 pi f0 D/c} (base) and e^{j 2 pi df D/c}
/// (step). Cell index runs row-major, matching Grid2D storage. Safe to share
/// read-only across threads.
class SteeringPlan {
 public:
  explicit SteeringPlan(SteeringPlanKey key);

  const SteeringPlanKey& key() const { return key_; }
  std::size_t num_cells() const { return cells_; }
  std::size_t num_antennas() const { return key_.antennas.size(); }

  /// The D_j(x) field of antenna `j` (hyperbolic level sets, Fig. 6b).
  const dsp::Grid2D& RelativeDistance(std::size_t j) const {
    return rel_d_[j];
  }

  // Split-complex rotor arrays of antenna `j`, each num_cells() long.
  const double* base_re(std::size_t j) const { return base_[j].re.data(); }
  const double* base_im(std::size_t j) const { return base_[j].im.data(); }
  const double* step_re(std::size_t j) const { return step_[j].re.data(); }
  const double* step_im(std::size_t j) const { return step_[j].im.data(); }

  /// The pyramid level decimating this plan's grid by `stride`. Levels are
  /// index views (no rotor copies), built lazily and memoized; safe to call
  /// concurrently.
  std::shared_ptr<const SteeringLevel> Level(std::size_t stride) const;

  /// Rotor + relative-distance storage of this plan, in bytes — what the
  /// cache's byte budget accounts (pyramid levels are index-only and small).
  std::size_t MemoryBytes() const {
    // rel_d + base/step re/im: five doubles per (cell, antenna).
    return cells_ * num_antennas() * 5 * sizeof(double);
  }

 private:
  SteeringPlanKey key_;
  std::size_t cells_ = 0;
  std::vector<dsp::Grid2D> rel_d_;
  std::vector<dsp::SplitComplexVec> base_;
  std::vector<dsp::SplitComplexVec> step_;
  mutable std::mutex level_mu_;
  mutable std::vector<std::shared_ptr<const SteeringLevel>> levels_;
};

/// Capacity bounds of the steering-plan cache. Either limit alone evicts;
/// the most recently used plan is always retained even when it exceeds the
/// byte budget by itself (the pipeline needs at least one plan to run).
struct SteeringCacheLimits {
  /// Maximum resident plans. A deployment needs one plan per distinct
  /// (anchor geometry, grid, comb) — 64 comfortably covers the multi-
  /// scenario benches while bounding pathological sweeps.
  std::size_t max_plans = 64;
  /// Maximum resident rotor storage (SteeringPlan::MemoryBytes sums).
  std::size_t max_bytes = std::size_t{512} << 20;
};

/// Thread-safe keyed LRU cache of steering plans. Plans are built at most
/// once per resident key (under the mutex — first-round cost only) and
/// handed out as shared_ptr<const>, so readers never synchronize after the
/// build and eviction never invalidates a plan still in use. One cache per
/// Localizer / LocalizationEngine serves every worker thread; multi-
/// scenario runs stay within SteeringCacheLimits instead of growing without
/// bound.
class SteeringPlanCache {
 public:
  SteeringPlanCache();
  explicit SteeringPlanCache(SteeringCacheLimits limits);

  std::shared_ptr<const SteeringPlan> GetOrBuild(const SteeringPlanKey& key);

  /// Allocation-free on the hit path: compares `input`/`spec` against the
  /// cached keys field-by-field and only materializes a key on a miss.
  std::shared_ptr<const SteeringPlan> GetOrBuild(const SpectraInput& input,
                                                 const dsp::GridSpec& spec,
                                                 double comb_step = 2.0e6);

  /// Number of plans built so far (distinct keys seen, plus rebuilds of
  /// evicted keys). The amortization tests assert this stops growing after
  /// the first round.
  /// Deprecated: thin wrapper over per-instance state kept for existing
  /// callers; new code should read the `bloc.steering_plan_cache.*`
  /// registry counters (obs/metrics.h) instead.
  std::size_t builds() const;
  /// Total lookups (hits + builds). Deprecated: see builds().
  std::size_t lookups() const;

  /// Plans evicted by the LRU bounds so far (also published as the
  /// `bloc.steering_cache.evictions` counter).
  std::size_t evictions() const;
  /// Resident rotor bytes (also the `bloc.steering_cache.bytes` gauge).
  std::size_t bytes() const;
  const SteeringCacheLimits& limits() const { return limits_; }

 private:
  std::shared_ptr<const SteeringPlan> Insert(
      std::shared_ptr<const SteeringPlan> plan);
  void EvictOverBudgetLocked();

  mutable std::mutex mu_;
  /// MRU-first: hits rotate the plan to the front, eviction pops the back.
  std::vector<std::shared_ptr<const SteeringPlan>> plans_;
  SteeringCacheLimits limits_;
  std::size_t builds_ = 0;
  std::size_t lookups_ = 0;
  std::size_t evictions_ = 0;
  std::size_t bytes_ = 0;
  obs::Counter& builds_metric_;
  obs::Counter& lookups_metric_;
  obs::Counter& evictions_metric_;
  obs::Gauge& bytes_gauge_;
};

/// Steering-plan variant of JointLikelihoodMapInto (spectra.h): identical
/// output to the reference kernel, but all geometry work comes from `plan`.
/// `grid` must already have the plan's spec. Throws std::invalid_argument
/// when `plan` does not match (input, grid).
void JointLikelihoodMapInto(const SpectraInput& input, const SteeringPlan& plan,
                            dsp::Grid2D& grid, SpectraWorkspace& ws);

/// Steering-plan variant of the Eq. 16 distance-only map (same contract).
void DistanceOnlyMapInto(const SpectraInput& input, const SteeringPlan& plan,
                         dsp::Grid2D& grid, SpectraWorkspace& ws);

/// Evaluates the Eq. 17 magnitude of `input` at an arbitrary subset of plan
/// cells: out[i] = the joint-likelihood value at row-major fine cell
/// cells[i]. The comb walk runs the same dispatched kernels over rotors
/// gathered into `ws`, and the kernels are lane-order-independent (no FMA),
/// so each out[i] is bit-identical to the corresponding cell of
/// JointLikelihoodMapInto over the full grid — the property the
/// coarse-to-fine search rests on. Throws when `plan` does not match
/// `input` or a cell index is out of range.
void JointLikelihoodCellsInto(const SpectraInput& input,
                              const SteeringPlan& plan,
                              std::span<const std::uint32_t> cells,
                              double* out, SpectraWorkspace& ws);

/// A contiguous run of row-major fine cells: [begin, begin + length).
struct CellSpan {
  std::uint32_t begin = 0;
  std::uint32_t length = 0;
};

/// Span variant of JointLikelihoodCellsInto for contiguous cell runs: the
/// rotors of a run are already contiguous in the plan's storage, so the walk
/// kernel reads them in place — no per-cell gather, same per-cell cost as
/// the full-grid path. out[i] covers the spans concatenated in order; every
/// value is bit-identical to the corresponding cell of the full-grid map
/// (the kernels are lane-order-independent). This is what makes refining a
/// large survivor fraction cheaper than re-running the exhaustive map.
void JointLikelihoodSpansInto(const SpectraInput& input,
                              const SteeringPlan& plan,
                              std::span<const CellSpan> spans,
                              double* out, SpectraWorkspace& ws);

}  // namespace bloc::core
