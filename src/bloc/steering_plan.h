// Precomputed steering plans for the Eq. 17 likelihood kernels.
//
// For a fixed (grid, anchor geometry, master reference, comb layout) the
// per-cell relative distances D_ij(x) and the base/step phase rotors of the
// comb walk never change between rounds. A SteeringPlan hoists all of that
// out of the hot path once — SpotFi/ArrayTrack-style steering-matrix
// precomputation mapped onto BLoc's Cartesian grid — leaving the steady-state
// kernel a branch-free complex multiply-accumulate over cells x comb steps
// with no sqrt, no sin/cos and no std::complex arithmetic.
//
// Rotors are stored split-complex (separate aligned re[]/im[] arrays, cell
// index contiguous) so the fused MAC+rotate loop auto-vectorizes.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "bloc/spectra.h"
#include "dsp/aligned.h"
#include "dsp/grid2d.h"
#include "geom/vec2.h"
#include "obs/metrics.h"

namespace bloc::core {

/// Everything the precomputed geometry terms depend on. Two keys compare
/// equal iff the plans would be identical (exact double compare: any
/// difference rebuilds, which is the safe direction for a cache).
struct SteeringPlanKey {
  dsp::GridSpec grid;
  /// Positions of the active antennas (after max_antennas truncation).
  std::vector<geom::Vec2> antennas;
  geom::Vec2 master_ref;
  double master_ref_distance = 0.0;
  double comb_f0 = 0.0;
  double comb_step = 0.0;

  bool operator==(const SteeringPlanKey&) const = default;
};

/// Builds the key for `input` evaluated on `grid`. Throws when `input` has
/// no bands (comb_f0 would be undefined).
SteeringPlanKey MakeSteeringPlanKey(const SpectraInput& input,
                                    const dsp::GridSpec& spec,
                                    double comb_step = 2.0e6);

/// Immutable per-(anchor, grid, comb) precomputation: for every grid cell x
/// and active antenna j, the relative distance D_j(x) = |x-a_j| - |x-m00| -
/// d_i0 and the unit rotors e^{j 2 pi f0 D/c} (base) and e^{j 2 pi df D/c}
/// (step). Cell index runs row-major, matching Grid2D storage. Safe to share
/// read-only across threads.
class SteeringPlan {
 public:
  explicit SteeringPlan(SteeringPlanKey key);

  const SteeringPlanKey& key() const { return key_; }
  std::size_t num_cells() const { return cells_; }
  std::size_t num_antennas() const { return key_.antennas.size(); }

  /// The D_j(x) field of antenna `j` (hyperbolic level sets, Fig. 6b).
  const dsp::Grid2D& RelativeDistance(std::size_t j) const {
    return rel_d_[j];
  }

  // Split-complex rotor arrays of antenna `j`, each num_cells() long.
  const double* base_re(std::size_t j) const { return base_[j].re.data(); }
  const double* base_im(std::size_t j) const { return base_[j].im.data(); }
  const double* step_re(std::size_t j) const { return step_[j].re.data(); }
  const double* step_im(std::size_t j) const { return step_[j].im.data(); }

 private:
  SteeringPlanKey key_;
  std::size_t cells_ = 0;
  std::vector<dsp::Grid2D> rel_d_;
  std::vector<dsp::SplitComplexVec> base_;
  std::vector<dsp::SplitComplexVec> step_;
};

/// Thread-safe keyed cache of steering plans. Plans are built at most once
/// per key (under the mutex — first-round cost only) and handed out as
/// shared_ptr<const>, so readers never synchronize after the build. One
/// cache per Localizer / LocalizationEngine serves every worker thread.
class SteeringPlanCache {
 public:
  SteeringPlanCache();

  std::shared_ptr<const SteeringPlan> GetOrBuild(const SteeringPlanKey& key);

  /// Allocation-free on the hit path: compares `input`/`spec` against the
  /// cached keys field-by-field and only materializes a key on a miss.
  std::shared_ptr<const SteeringPlan> GetOrBuild(const SpectraInput& input,
                                                 const dsp::GridSpec& spec,
                                                 double comb_step = 2.0e6);

  /// Number of plans built so far (== distinct keys seen). The amortization
  /// tests assert this stops growing after the first round.
  /// Deprecated: thin wrapper over per-instance state kept for existing
  /// callers; new code should read the `bloc.steering_plan_cache.*`
  /// registry counters (obs/metrics.h) instead.
  std::size_t builds() const;
  /// Total lookups (hits + builds). Deprecated: see builds().
  std::size_t lookups() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<const SteeringPlan>> plans_;
  std::size_t builds_ = 0;
  std::size_t lookups_ = 0;
  obs::Counter& builds_metric_;
  obs::Counter& lookups_metric_;
};

/// Steering-plan variant of JointLikelihoodMapInto (spectra.h): identical
/// output to the reference kernel, but all geometry work comes from `plan`.
/// `grid` must already have the plan's spec. Throws std::invalid_argument
/// when `plan` does not match (input, grid).
void JointLikelihoodMapInto(const SpectraInput& input, const SteeringPlan& plan,
                            dsp::Grid2D& grid, SpectraWorkspace& ws);

/// Steering-plan variant of the Eq. 16 distance-only map (same contract).
void DistanceOnlyMapInto(const SpectraInput& input, const SteeringPlan& plan,
                         dsp::Grid2D& grid, SpectraWorkspace& ws);

}  // namespace bloc::core
