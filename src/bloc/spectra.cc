#include "bloc/spectra.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "bloc/steering_plan.h"
#include "dsp/complex_ops.h"

namespace bloc::core {

using dsp::cplx;
using dsp::kSpeedOfLight;
using dsp::kTwoPi;

namespace detail {

void BuildComb(const SpectraInput& input, std::size_t antennas,
               SpectraWorkspace& ws) {
  const auto& freqs = input.band_freqs_hz;
  if (freqs.empty()) throw std::invalid_argument("spectra: no bands");
  ws.comb_f0 = freqs.front();
  std::size_t max_k = 0;
  ws.k_of.resize(freqs.size());
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    const double delta = freqs[i] - ws.comb_f0;
    if (delta < -1.0) throw std::invalid_argument("spectra: bands unsorted");
    const auto k = static_cast<std::size_t>(std::llround(delta / ws.comb_step));
    ws.k_of[i] = k;
    max_k = std::max(max_k, k);
  }
  ws.comb_steps = max_k + 1;
  ws.dense.resize(antennas);
  for (std::size_t j = 0; j < antennas; ++j) {
    ws.dense[j].assign(ws.comb_steps, cplx{0, 0});
    const dsp::CVec& alpha = input.channels->alpha[j];
    for (std::size_t i = 0; i < freqs.size(); ++i) {
      ws.dense[j][ws.k_of[i]] = alpha[i];
    }
  }
}

std::size_t EffectiveAntennas(const SpectraInput& input) {
  const std::size_t all = input.channels->alpha.size();
  return input.max_antennas == 0 ? all : std::min(all, input.max_antennas);
}

}  // namespace detail

using detail::BuildComb;
using detail::EffectiveAntennas;

namespace {

/// Caches the antenna positions for the active antennas.
void CacheAntennaPositions(const SpectraInput& input, std::size_t antennas,
                           SpectraWorkspace& ws) {
  ws.ant_pos.resize(antennas);
  for (std::size_t j = 0; j < antennas; ++j) {
    ws.ant_pos[j] = input.geometry.AntennaPosition(j);
  }
}

/// sum_k alpha_jk e^{+j 2 pi f_k D / c} via base+step rotor walk.
cplx BandSum(const dsp::CVec& dense, const SpectraWorkspace& ws,
             double relative_d) {
  const double base_phi = kTwoPi * ws.comb_f0 * relative_d / kSpeedOfLight;
  const double step_phi = kTwoPi * ws.comb_step * relative_d / kSpeedOfLight;
  cplx rotor = dsp::Rotor(base_phi);
  const cplx step = dsp::Rotor(step_phi);
  cplx acc{0, 0};
  for (std::size_t k = 0; k < ws.comb_steps; ++k) {
    acc += dense[k] * rotor;
    rotor *= step;
  }
  return acc;
}

}  // namespace

void JointLikelihoodMapInto(const SpectraInput& input, dsp::Grid2D& grid,
                            SpectraWorkspace& ws) {
  const std::size_t antennas = EffectiveAntennas(input);
  BuildComb(input, antennas, ws);
  CacheAntennaPositions(input, antennas, ws);

  for (std::size_t row = 0; row < grid.rows(); ++row) {
    const double y = grid.YOf(row);
    for (std::size_t col = 0; col < grid.cols(); ++col) {
      const geom::Vec2 x{grid.XOf(col), y};
      const double d_ref = geom::Distance(x, input.master_ref_antenna);
      cplx acc{0, 0};
      for (std::size_t j = 0; j < antennas; ++j) {
        const double d = geom::Distance(x, ws.ant_pos[j]);
        const double relative = d - d_ref - input.master_ref_distance;
        acc += BandSum(ws.dense[j], ws, relative);
      }
      grid.At(col, row) = std::abs(acc);
    }
  }
}

dsp::Grid2D JointLikelihoodMap(const SpectraInput& input,
                               const dsp::GridSpec& spec) {
  dsp::Grid2D grid(spec);
  SpectraWorkspace ws;
  const SteeringPlan plan(MakeSteeringPlanKey(input, spec, ws.comb_step));
  JointLikelihoodMapInto(input, plan, grid, ws);
  return grid;
}

dsp::Grid2D AngleOnlyMap(const SpectraInput& input,
                         const dsp::GridSpec& spec) {
  const std::size_t antennas = EffectiveAntennas(input);
  const auto& freqs = input.band_freqs_hz;
  const double l = input.geometry.spacing_m;
  const geom::Vec2 origin = input.geometry.AntennaPosition(0);
  const geom::Vec2 axis{std::cos(input.geometry.axis_radians),
                        std::sin(input.geometry.axis_radians)};

  dsp::Grid2D grid(spec);
  for (std::size_t row = 0; row < grid.rows(); ++row) {
    const double y = grid.YOf(row);
    for (std::size_t col = 0; col < grid.cols(); ++col) {
      const geom::Vec2 u = (geom::Vec2{grid.XOf(col), y} - origin).Normalized();
      // See AoaBaseline: channel phase across antennas carries +u.axis, so
      // the compensating steering angle is negated.
      const double sin_theta = -u.Dot(axis);
      double p = 0.0;
      for (std::size_t k = 0; k < freqs.size(); ++k) {
        const double psi = kTwoPi * l * sin_theta * freqs[k] / kSpeedOfLight;
        const cplx step = dsp::Rotor(psi);
        cplx rotor{1, 0};
        cplx acc{0, 0};
        for (std::size_t j = 0; j < antennas; ++j) {
          acc += input.channels->alpha[j][k] * rotor;
          rotor *= step;
        }
        p += std::abs(acc);
      }
      grid.At(col, row) = p;
    }
  }
  return grid;
}

dsp::Grid2D DistanceOnlyMap(const SpectraInput& input,
                            const dsp::GridSpec& spec,
                            SteeringPlanCache* cache) {
  dsp::Grid2D grid(spec);
  SpectraWorkspace ws;
  if (cache != nullptr) {
    const auto plan = cache->GetOrBuild(input, spec, ws.comb_step);
    DistanceOnlyMapInto(input, *plan, grid, ws);
  } else {
    const SteeringPlan plan(MakeSteeringPlanKey(input, spec, ws.comb_step));
    DistanceOnlyMapInto(input, plan, grid, ws);
  }
  return grid;
}

dsp::RVec AngleSpectrum(std::span<const cplx> per_antenna, double freq_hz,
                        double spacing_m, std::span<const double> thetas) {
  dsp::RVec out;
  out.reserve(thetas.size());
  for (double theta : thetas) {
    const double psi =
        kTwoPi * spacing_m * std::sin(theta) * freq_hz / kSpeedOfLight;
    const cplx step = dsp::Rotor(psi);
    cplx rotor{1, 0};
    cplx acc{0, 0};
    for (const cplx& a : per_antenna) {
      acc += a * rotor;
      rotor *= step;
    }
    out.push_back(std::abs(acc));
  }
  return out;
}

}  // namespace bloc::core
