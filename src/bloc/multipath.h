// Multipath rejection (paper §5.4): among the peaks of the fused likelihood
// map, pick the direct-path peak using a weighted combination of
//   - total distance to the anchors (direct paths are shortest), and
//   - spatial entropy of the likelihood around the peak (reflections are
//     spread out because real reflectors scatter; direct peaks are sharp).
//
// Score (Eq. 18 with the entropy sign matching the stated intuition that
// direct paths are "peaky"): s_x = p_x * exp(-b*H - a*sum_i d_i).
#pragma once

#include <vector>

#include "bloc/calibration.h"
#include "dsp/grid2d.h"
#include "dsp/peaks.h"
#include "geom/vec2.h"

namespace bloc::core {

enum class SelectionMode {
  /// Full BLoc scoring: likelihood x entropy x distance (Eq. 18).
  kBlocScore,
  /// Naive baseline of §8.7: the peak with the smallest total distance.
  kShortestDistance,
  /// Pick the global maximum of the fused map (no multipath rejection).
  kMaxLikelihood,
};

struct ScoringConfig {
  double a = 0.1;   // weight of the distance term (paper §7)
  double b = 0.05;  // weight of the entropy term (paper §7)
  /// Radius of the circular entropy window in cells; 3 gives the paper's
  /// 7x7 window.
  std::size_t entropy_window_radius = 3;
  dsp::PeakOptions peaks;
  SelectionMode mode = SelectionMode::kBlocScore;
};

struct ScoredPeak {
  dsp::Peak peak;
  double entropy = 0.0;       // H around the peak
  double sum_distance = 0.0;  // sum_i |x - anchor_i|
  double score = 0.0;
};

struct Selection {
  geom::Vec2 position;
  std::vector<ScoredPeak> peaks;  // all candidates, scored, best first
};

/// Scores every peak of `fused` and selects the direct-path location.
/// Throws if the map has no peaks at all.
Selection SelectLocation(const dsp::Grid2D& fused, const Deployment& deployment,
                         const ScoringConfig& config);

}  // namespace bloc::core
