#include "bloc/corrected_channel.h"

#include <algorithm>
#include <stdexcept>

namespace bloc::core {

using anchor::BandMeasurement;
using anchor::CsiReport;
using dsp::cplx;

CorrectedChannels ComputeCorrectedChannels(
    const net::MeasurementRound& round) {
  const CsiReport* master = nullptr;
  for (const CsiReport& r : round.reports) {
    if (r.is_master) {
      if (master != nullptr) {
        throw std::invalid_argument("corrected channels: multiple masters");
      }
      master = &r;
    }
  }
  if (master == nullptr) {
    throw std::invalid_argument("corrected channels: no master report");
  }

  // Bands present in every report (channel hops can be lost to noise).
  std::vector<std::uint8_t> common;
  for (const BandMeasurement& b : master->bands) {
    bool everywhere = true;
    for (const CsiReport& r : round.reports) {
      if (r.FindBand(b.data_channel) == nullptr) {
        everywhere = false;
        break;
      }
    }
    if (everywhere) common.push_back(b.data_channel);
  }
  if (common.empty()) {
    throw std::invalid_argument("corrected channels: no common bands");
  }
  std::sort(common.begin(), common.end(), [&](std::uint8_t a, std::uint8_t b) {
    return master->FindBand(a)->freq_hz < master->FindBand(b)->freq_hz;
  });

  CorrectedChannels out;
  out.band_channels = common;
  out.band_freqs_hz.reserve(common.size());
  for (std::uint8_t c : common) {
    out.band_freqs_hz.push_back(master->FindBand(c)->freq_hz);
  }

  for (const CsiReport& r : round.reports) {
    AnchorCorrected ac;
    ac.anchor_id = r.anchor_id;
    ac.is_master = r.is_master;
    const std::size_t antennas = r.bands.front().tag_csi.size();
    ac.alpha.assign(antennas, dsp::CVec(common.size(), cplx{0, 0}));
    for (std::size_t k = 0; k < common.size(); ++k) {
      const BandMeasurement* band = r.FindBand(common[k]);
      const BandMeasurement* mband = master->FindBand(common[k]);
      const cplx h00 = mband->tag_csi.at(0);
      for (std::size_t j = 0; j < antennas; ++j) {
        const cplx h_ij = band->tag_csi.at(j);
        if (r.is_master) {
          ac.alpha[j][k] = h_ij * std::conj(h00);
        } else {
          // Overheard master response, measured at this anchor's antenna 0.
          const cplx big_h_i0 = band->master_csi.at(0);
          ac.alpha[j][k] = h_ij * std::conj(big_h_i0) * std::conj(h00);
        }
      }
    }
    out.anchors.push_back(std::move(ac));
  }
  return out;
}

}  // namespace bloc::core
