#include "bloc/corrected_channel.h"

#include <algorithm>
#include <stdexcept>

namespace bloc::core {

using anchor::BandMeasurement;
using anchor::CsiReport;
using dsp::cplx;

void RoundView::Begin(const net::MeasurementRound& r) {
  round = &r;
  num_reports_ = 0;
}

RoundView::ReportView& RoundView::Append(std::size_t report_index) {
  if (num_reports_ == pool_.size()) pool_.emplace_back();
  ReportView& rv = pool_[num_reports_++];
  rv.report_index = report_index;
  rv.bands.clear();
  return rv;
}

void RoundView::AssignAll(const net::MeasurementRound& r) {
  Begin(r);
  for (std::size_t i = 0; i < r.reports.size(); ++i) {
    ReportView& rv = Append(i);
    for (std::size_t k = 0; k < r.reports[i].bands.size(); ++k) {
      rv.bands.push_back(k);
    }
  }
}

const BandMeasurement* RoundView::FindBand(std::size_t i,
                                           std::uint8_t data_channel) const {
  const CsiReport& report = Report(i);
  for (std::size_t k : pool_[i].bands) {
    if (report.bands[k].data_channel == data_channel) {
      return &report.bands[k];
    }
  }
  return nullptr;
}

void ComputeCorrectedChannelsInto(const RoundView& view,
                                  CorrectedChannels& out) {
  std::size_t master_index = view.num_reports();
  for (std::size_t i = 0; i < view.num_reports(); ++i) {
    if (view.Report(i).is_master) {
      if (master_index != view.num_reports()) {
        throw std::invalid_argument("corrected channels: multiple masters");
      }
      master_index = i;
    }
  }
  if (master_index == view.num_reports()) {
    throw std::invalid_argument("corrected channels: no master report");
  }
  const CsiReport& master = view.Report(master_index);

  // Bands present in every kept report (channel hops can be lost to noise).
  // The scratch is thread_local so per-round recomputation stays
  // allocation-free; each engine worker has its own copy.
  thread_local std::vector<std::uint8_t> common;
  common.clear();
  for (std::size_t k : view.View(master_index).bands) {
    const std::uint8_t channel = master.bands[k].data_channel;
    bool everywhere = true;
    for (std::size_t i = 0; i < view.num_reports(); ++i) {
      if (view.FindBand(i, channel) == nullptr) {
        everywhere = false;
        break;
      }
    }
    if (everywhere) common.push_back(channel);
  }
  if (common.empty()) {
    throw std::invalid_argument("corrected channels: no common bands");
  }
  std::sort(common.begin(), common.end(),
            [&](std::uint8_t a, std::uint8_t b) {
              return view.FindBand(master_index, a)->freq_hz <
                     view.FindBand(master_index, b)->freq_hz;
            });

  out.band_channels.assign(common.begin(), common.end());
  out.band_freqs_hz.clear();
  out.band_freqs_hz.reserve(common.size());
  for (std::uint8_t c : common) {
    out.band_freqs_hz.push_back(view.FindBand(master_index, c)->freq_hz);
  }

  out.anchors.resize(view.num_reports());
  for (std::size_t i = 0; i < view.num_reports(); ++i) {
    const CsiReport& r = view.Report(i);
    AnchorCorrected& ac = out.anchors[i];
    ac.anchor_id = r.anchor_id;
    ac.is_master = r.is_master;
    const std::size_t antennas =
        r.bands[view.View(i).bands.front()].tag_csi.size();
    ac.alpha.resize(antennas);
    for (std::size_t j = 0; j < antennas; ++j) {
      ac.alpha[j].assign(common.size(), cplx{0, 0});
    }
    for (std::size_t k = 0; k < common.size(); ++k) {
      const BandMeasurement* band = view.FindBand(i, common[k]);
      const BandMeasurement* mband = view.FindBand(master_index, common[k]);
      const cplx h00 = mband->tag_csi.at(0);
      for (std::size_t j = 0; j < antennas; ++j) {
        const cplx h_ij = band->tag_csi.at(j);
        if (r.is_master) {
          ac.alpha[j][k] = h_ij * std::conj(h00);
        } else {
          // Overheard master response, measured at this anchor's antenna 0.
          const cplx big_h_i0 = band->master_csi.at(0);
          ac.alpha[j][k] = h_ij * std::conj(big_h_i0) * std::conj(h00);
        }
      }
    }
  }
}

CorrectedChannels ComputeCorrectedChannels(
    const net::MeasurementRound& round) {
  RoundView view;
  view.AssignAll(round);
  CorrectedChannels out;
  ComputeCorrectedChannelsInto(view, out);
  return out;
}

}  // namespace bloc::core
