// Track-while-localize (DESIGN.md §5g): a per-tag stage that closes the
// loop between the Kalman tracker and the coarse-to-fine search. Each round
// the tracker's prediction (position extrapolated by the round's dt, sized
// by the predicted covariance) becomes the LocalizerWorkspace search gate,
// so the survivor search only evaluates the blocks the tag can plausibly
// have reached; the fix that comes back updates the tracker. A missed gate
// falls back along the existing chain (ungated coarse, then exhaustive) and
// the reason is recorded per round, so gating can only cost time, never a
// fix. With gating disabled the per-round fixes are bit-identical to the
// plain Localizer.
#pragma once

#include <cstddef>

#include "bloc/localizer.h"
#include "track/kalman.h"

namespace bloc::track {

struct TrackedLocalizerConfig {
  KalmanConfig kalman;
  /// Feed the prediction into the search as a gate. Only effective with
  /// SearchMode::kCoarseToFine; the exhaustive strategy ignores gates.
  bool gate_search = true;
  /// Gate half-width = gate_sigmas x max per-axis predicted std +
  /// gate_margin_m, floored at min_gate_radius_m. The margin absorbs
  /// un-modelled motion between rounds; the floor keeps very confident
  /// tracks from gating below the scoring halo. 2 sigma is deliberately
  /// tighter than the tracker's Mahalanobis gate: a fix clipped to the
  /// gate's edge is one the innovation gate would likely reject anyway, so
  /// the tight search region trades nothing measurable on trajectory error
  /// for a ~30% evaluated-cell saving (bench_traj sweeps this).
  double gate_sigmas = 2.0;
  double gate_margin_m = 0.3;
  double min_gate_radius_m = 0.75;
  /// Accepted fixes before the first gated round — the velocity estimate is
  /// meaningless until at least two fixes are in.
  std::size_t warmup_fixes = 2;
};

/// One round's output: the raw per-round fix plus the smoothed track state.
struct TrackedFix {
  core::LocationResult raw;
  /// Kalman state after this round's update (equals the raw fix direction
  /// smoothed against history; holds the prediction when the fix was
  /// rejected or empty).
  geom::Vec2 tracked_position;
  geom::Vec2 velocity;
  /// The raw fix passed the tracker's innovation gate and updated the
  /// state (false for empty rounds and Mahalanobis rejections).
  bool fix_accepted = false;
  /// This round's search ran inside a prediction gate.
  bool gated = false;
  /// Why an active gate was abandoned (FallbackReason::kNone when it held).
  core::FallbackReason gate_fallback = core::FallbackReason::kNone;
};

/// Per-tag tracking session over a shared Localizer. Not thread-safe: one
/// instance per tag per thread (the serve layer keeps one per TagSession).
/// The Localizer must outlive the TrackedLocalizer.
class TrackedLocalizer {
 public:
  explicit TrackedLocalizer(const core::Localizer& localizer,
                            const TrackedLocalizerConfig& config = {});

  /// Localizes one round captured at `t_s` (seconds, monotone per tag)
  /// through the gated search and updates the tracker with the fix.
  TrackedFix Locate(const net::MeasurementRound& round, double t_s,
                    core::LocalizerWorkspace& ws);

  /// Forgets the track (the next round re-initializes from its raw fix).
  void Reset();

  const KalmanTracker& tracker() const { return tracker_; }
  const TrackedLocalizerConfig& config() const { return config_; }
  /// Rounds whose search ran gated / whose gate was abandoned.
  std::size_t gated_rounds() const { return gated_rounds_; }
  std::size_t gate_misses() const { return gate_misses_; }

 private:
  const core::Localizer* localizer_;
  TrackedLocalizerConfig config_;
  KalmanTracker tracker_;
  double last_t_s_ = 0.0;
  bool has_time_ = false;
  std::size_t accepted_fixes_ = 0;
  std::size_t gated_rounds_ = 0;
  std::size_t gate_misses_ = 0;
};

}  // namespace bloc::track
