#include "track/tracked_localizer.h"

#include <algorithm>

namespace bloc::track {

TrackedLocalizer::TrackedLocalizer(const core::Localizer& localizer,
                                   const TrackedLocalizerConfig& config)
    : localizer_(&localizer), config_(config), tracker_(config.kalman) {}

void TrackedLocalizer::Reset() {
  tracker_ = KalmanTracker(config_.kalman);
  has_time_ = false;
  last_t_s_ = 0.0;
  accepted_fixes_ = 0;
}

TrackedFix TrackedLocalizer::Locate(const net::MeasurementRound& round,
                                    double t_s,
                                    core::LocalizerWorkspace& ws) {
  const double dt = has_time_ ? t_s - last_t_s_ : 0.0;
  TrackedFix out;

  const bool can_gate =
      config_.gate_search && tracker_.initialized() &&
      accepted_fixes_ >= config_.warmup_fixes &&
      localizer_->config().spectra.search.mode ==
          core::SearchMode::kCoarseToFine;
  if (can_gate) {
    const KalmanPrediction pred = tracker_.Predict(std::max(dt, 0.0));
    ws.gate.active = true;
    ws.gate.center = pred.position;
    ws.gate.radius_m =
        std::max(config_.min_gate_radius_m,
                 config_.gate_sigmas *
                         std::max(pred.position_std.x, pred.position_std.y) +
                     config_.gate_margin_m);
  }
  out.raw = localizer_->Locate(round, ws);
  ws.gate.active = false;

  const bool have_fix = out.raw.anchors_used > 0;
  if (can_gate && have_fix) {
    // The search stats are only this round's when the map stage actually
    // ran (empty rounds return the sentinel before the search).
    out.gated = ws.search.stats.gated;
    out.gate_fallback = ws.search.stats.gate_fallback;
    if (out.gated) ++gated_rounds_;
    if (out.gate_fallback != core::FallbackReason::kNone) ++gate_misses_;
  }

  if (have_fix) {
    const bool was_initialized = tracker_.initialized();
    out.fix_accepted = tracker_.Update(out.raw.position, dt);
    if (out.fix_accepted) ++accepted_fixes_;
    // The filter state sits at t_s after an initialization or any dt > 0
    // update (a Mahalanobis rejection still advances the prediction); a
    // dt <= 0 rejection leaves it at the previous, later timestamp.
    if (!was_initialized || dt > 0.0) {
      last_t_s_ = t_s;
      has_time_ = true;
    }
  }

  if (tracker_.initialized()) {
    out.tracked_position = tracker_.position();
    out.velocity = tracker_.velocity();
  } else {
    out.tracked_position = out.raw.position;
    out.velocity = {0.0, 0.0};
  }
  return out;
}

}  // namespace bloc::track
