// Constant-velocity Kalman tracking over BLoc position fixes. The paper's
// motivating applications (pets, keys, factory assets) are moving targets
// observed at ~1 fix per localization round; a small filter over the fixes
// smooths per-round outliers and yields velocity estimates.
#pragma once

#include <cstddef>

#include "geom/vec2.h"

namespace bloc::track {

struct KalmanConfig {
  /// Process noise: std-dev of the white acceleration (m/s^2).
  double accel_std = 1.0;
  /// Measurement noise: std-dev of a BLoc fix (m). The paper's median error
  /// is ~0.86 m, so ~0.7 is a reasonable per-axis default.
  double fix_std = 0.7;
  /// Mahalanobis gate: fixes further than this many sigmas from the
  /// prediction are rejected as outliers (0 disables gating).
  double gate_sigmas = 4.0;
};

/// 2-D constant-velocity Kalman filter with per-axis decoupling (the motion
/// and measurement models are axis-independent, so two 2-state filters are
/// exactly equivalent to one 4-state filter and simpler to verify).
class KalmanTracker {
 public:
  explicit KalmanTracker(const KalmanConfig& config = {});

  /// First fix initializes the state; later fixes run predict+update with
  /// the elapsed time `dt_s`. Returns false when the fix was gated out
  /// (the prediction still advances).
  bool Update(const geom::Vec2& fix, double dt_s);

  bool initialized() const { return initialized_; }
  geom::Vec2 position() const { return {x_.pos, y_.pos}; }
  geom::Vec2 velocity() const { return {x_.vel, y_.vel}; }
  /// Per-axis position std-dev of the current estimate.
  geom::Vec2 position_std() const;
  std::size_t rejected_fixes() const { return rejected_; }

 private:
  struct Axis {
    double pos = 0.0;
    double vel = 0.0;
    // Covariance [[p00, p01], [p01, p11]].
    double p00 = 1.0, p01 = 0.0, p11 = 1.0;

    void Predict(double dt, double q);
    /// Returns the normalized innovation (z - pos) / sigma.
    double Innovation(double z, double r) const;
    void Correct(double z, double r);
  };

  KalmanConfig config_;
  bool initialized_ = false;
  Axis x_, y_;
  std::size_t rejected_ = 0;
};

}  // namespace bloc::track
