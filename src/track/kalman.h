// Constant-velocity Kalman tracking over BLoc position fixes. The paper's
// motivating applications (pets, keys, factory assets) are moving targets
// observed at ~1 fix per localization round; a small filter over the fixes
// smooths per-round outliers and yields velocity estimates.
#pragma once

#include <cstddef>

#include "geom/vec2.h"

namespace bloc::track {

struct KalmanConfig {
  /// Process noise: std-dev of the white acceleration (m/s^2).
  double accel_std = 1.0;
  /// Measurement noise: std-dev of a BLoc fix (m). The paper's median error
  /// is ~0.86 m, so ~0.7 is a reasonable per-axis default.
  double fix_std = 0.7;
  /// Mahalanobis gate: fixes further than this many sigmas from the
  /// prediction are rejected as outliers (0 disables gating).
  double gate_sigmas = 4.0;
};

/// State extrapolated `dt_s` ahead of the last update, without mutating the
/// filter — what the gated search reads to place its region before the
/// round's fix exists.
struct KalmanPrediction {
  geom::Vec2 position;
  geom::Vec2 velocity;
  /// Per-axis position std-dev of the extrapolated state (grows with dt).
  geom::Vec2 position_std;
};

/// 2-D constant-velocity Kalman filter with per-axis decoupling (the motion
/// and measurement models are axis-independent, so two 2-state filters are
/// exactly equivalent to one 4-state filter and simpler to verify).
class KalmanTracker {
 public:
  explicit KalmanTracker(const KalmanConfig& config = {});

  /// First fix initializes the state; later fixes run predict+update with
  /// the elapsed time `dt_s`. Returns false when the fix was rejected: a
  /// non-positive dt on an initialized filter (duplicate round or clock
  /// skew — the state is left untouched so bad timestamps cannot corrupt
  /// the covariance) or a fix outside the Mahalanobis gate (the prediction
  /// still advances). Rejections count in rejected_fixes() and the
  /// `track.rejected_fixes` registry counter.
  bool Update(const geom::Vec2& fix, double dt_s);

  /// Extrapolates the estimate `dt_s` ahead (const: the filter state is
  /// untouched). Meaningless before the first fix.
  KalmanPrediction Predict(double dt_s) const;

  bool initialized() const { return initialized_; }
  geom::Vec2 position() const { return {x_.pos, y_.pos}; }
  geom::Vec2 velocity() const { return {x_.vel, y_.vel}; }
  /// Per-axis position std-dev of the current estimate.
  geom::Vec2 position_std() const;
  std::size_t rejected_fixes() const { return rejected_; }

 private:
  struct Axis {
    double pos = 0.0;
    double vel = 0.0;
    // Covariance [[p00, p01], [p01, p11]].
    double p00 = 1.0, p01 = 0.0, p11 = 1.0;

    void Predict(double dt, double q);
    /// Returns the normalized innovation (z - pos) / sigma.
    double Innovation(double z, double r) const;
    void Correct(double z, double r);
  };

  KalmanConfig config_;
  bool initialized_ = false;
  Axis x_, y_;
  std::size_t rejected_ = 0;
};

}  // namespace bloc::track
