#include "track/kalman.h"

#include <cmath>

#include "obs/metrics.h"

namespace bloc::track {

namespace {

obs::Counter& RejectedFixesCounter() {
  static obs::Counter& counter = obs::GetCounter("track.rejected_fixes");
  return counter;
}

}  // namespace

KalmanTracker::KalmanTracker(const KalmanConfig& config) : config_(config) {}

void KalmanTracker::Axis::Predict(double dt, double q) {
  // x' = F x with F = [[1, dt], [0, 1]]; P' = F P F^T + Q, Q the white-
  // acceleration model.
  pos += vel * dt;
  const double p00_new = p00 + dt * (2.0 * p01 + dt * p11);
  const double p01_new = p01 + dt * p11;
  p00 = p00_new;
  p01 = p01_new;
  const double dt2 = dt * dt;
  p00 += q * dt2 * dt2 / 4.0;
  p01 += q * dt2 * dt / 2.0;
  p11 += q * dt2;
}

double KalmanTracker::Axis::Innovation(double z, double r) const {
  const double s = p00 + r;
  return (z - pos) / std::sqrt(s);
}

void KalmanTracker::Axis::Correct(double z, double r) {
  const double s = p00 + r;
  const double k0 = p00 / s;
  const double k1 = p01 / s;
  const double y = z - pos;
  pos += k0 * y;
  vel += k1 * y;
  const double p00_new = (1.0 - k0) * p00;
  const double p01_new = (1.0 - k0) * p01;
  const double p11_new = p11 - k1 * p01;
  p00 = p00_new;
  p01 = p01_new;
  p11 = p11_new;
}

bool KalmanTracker::Update(const geom::Vec2& fix, double dt_s) {
  const double r = config_.fix_std * config_.fix_std;
  if (!initialized_) {
    x_.pos = fix.x;
    y_.pos = fix.y;
    x_.vel = y_.vel = 0.0;
    x_.p00 = y_.p00 = r;
    x_.p01 = y_.p01 = 0.0;
    x_.p11 = y_.p11 = 4.0;  // loose velocity prior
    initialized_ = true;
    return true;
  }
  if (!(dt_s > 0.0)) {
    // Duplicate round or clock skew: predicting backwards (or by NaN)
    // would corrupt the covariance, so the fix is dropped whole and the
    // state keeps its last honest timestamp.
    ++rejected_;
    RejectedFixesCounter().Inc();
    return false;
  }
  const double q = config_.accel_std * config_.accel_std;
  x_.Predict(dt_s, q);
  y_.Predict(dt_s, q);
  if (config_.gate_sigmas > 0) {
    const double nx = x_.Innovation(fix.x, r);
    const double ny = y_.Innovation(fix.y, r);
    if (nx * nx + ny * ny >
        config_.gate_sigmas * config_.gate_sigmas) {
      ++rejected_;
      RejectedFixesCounter().Inc();
      return false;
    }
  }
  x_.Correct(fix.x, r);
  y_.Correct(fix.y, r);
  return true;
}

KalmanPrediction KalmanTracker::Predict(double dt_s) const {
  const double dt = dt_s > 0.0 ? dt_s : 0.0;
  const double q = config_.accel_std * config_.accel_std;
  KalmanPrediction out;
  out.position = {x_.pos + x_.vel * dt, y_.pos + y_.vel * dt};
  out.velocity = {x_.vel, y_.vel};
  const auto var = [&](const Axis& a) {
    const double dt2 = dt * dt;
    return a.p00 + dt * (2.0 * a.p01 + dt * a.p11) + q * dt2 * dt2 / 4.0;
  };
  out.position_std = {std::sqrt(std::max(var(x_), 0.0)),
                      std::sqrt(std::max(var(y_), 0.0))};
  return out;
}

geom::Vec2 KalmanTracker::position_std() const {
  return {std::sqrt(std::max(x_.p00, 0.0)),
          std::sqrt(std::max(y_.p00, 0.0))};
}

}  // namespace bloc::track
