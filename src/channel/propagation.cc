#include "channel/propagation.h"

#include <cmath>

#include "geom/segment.h"

namespace bloc::chan {

using geom::Segment;
using geom::Vec2;

namespace {

/// Free-space-style amplitude: unit amplitude at 1 m, falling as 1/d.
double SpreadAmplitude(double length_m) {
  return 1.0 / std::max(length_m, 0.05);
}

}  // namespace

PathSolver::PathSolver(const geom::Room& room, const PropagationConfig& config,
                       std::uint64_t seed)
    : room_(room), config_(config), shadow_seed_(seed * 0x9E3779B97F4A7C15ULL) {
  dsp::Rng rng = dsp::Rng(seed).Fork("scatter-points");
  const auto& faces = room_.reflectors();
  for (std::size_t fi = 0; fi < faces.size(); ++fi) {
    const geom::Reflector& refl = faces[fi];
    if (refl.scattering <= 0) continue;
    for (std::size_t s = 0; s < config_.scatter_points_per_face; ++s) {
      // Stratified along the face so scatterers cover the whole surface.
      const double lo =
          static_cast<double>(s) /
          static_cast<double>(config_.scatter_points_per_face);
      const double hi =
          static_cast<double>(s + 1) /
          static_cast<double>(config_.scatter_points_per_face);
      const double t = rng.Uniform(lo, hi);
      // Rough-surface weights: a few dominant facets, many weak ones.
      const double w = rng.Uniform(0.3, 1.0);
      scatter_points_.push_back(
          {refl.face.PointAt(t), w, static_cast<int>(fi)});
    }
  }
}

PathSet PathSolver::Solve(const Vec2& tx, const Vec2& rx) const {
  PathSet out;
  if (config_.include_direct) AddDirect(tx, rx, out);
  if (config_.include_specular) AddSpecular(tx, rx, out);
  if (config_.include_second_order) AddSecondOrder(tx, rx, out);
  if (config_.include_diffuse) AddDiffuse(tx, rx, out);
  return out;
}

void PathSolver::PushIfAudible(Path path, PathSet& out) const {
  if (std::abs(path.amplitude) <
      config_.amplitude_floor * SpreadAmplitude(path.length_m)) {
    return;
  }
  out.paths.push_back(path);
}

void PathSolver::AddDirect(const Vec2& tx, const Vec2& rx,
                           PathSet& out) const {
  const double d = geom::Distance(tx, rx);
  Path p;
  p.length_m = d;
  double loss_db = config_.direct_excess_loss_db;
  if (config_.direct_shadowing_std_db > 0) {
    // Deterministic per endpoint pair (5 cm quantization): a static
    // environment shadows a static link identically on every band/round.
    const auto q = [](double v) {
      return static_cast<std::uint64_t>(std::llround(v * 20.0)) & 0xFFFFu;
    };
    const std::uint64_t key =
        shadow_seed_ ^ (q(tx.x) << 48) ^ (q(tx.y) << 32) ^ (q(rx.x) << 16) ^
        q(rx.y);
    dsp::Rng rng(key);
    loss_db += std::abs(rng.Gaussian(config_.direct_shadowing_std_db));
  }
  p.amplitude = SpreadAmplitude(d) * room_.ThroughAmplitude(tx, rx) *
                std::pow(10.0, -loss_db / 20.0);
  p.kind = PathKind::kDirect;
  PushIfAudible(p, out);
}

void PathSolver::AddSpecular(const Vec2& tx, const Vec2& rx,
                             PathSet& out) const {
  const auto& faces = room_.reflectors();
  for (std::size_t fi = 0; fi < faces.size(); ++fi) {
    const geom::Reflector& refl = faces[fi];
    if (refl.reflectivity <= 0) continue;
    const Vec2 image = geom::MirrorAcross(tx, refl.face);
    // The reflected ray exists iff the image->rx segment crosses the face.
    const auto hit = geom::Intersect(Segment{image, rx}, refl.face);
    if (!hit) continue;
    const Vec2 s = *hit;
    const double d = geom::Distance(tx, s) + geom::Distance(s, rx);
    Path p;
    p.length_m = d;
    // Blockage of either leg by obstacles attenuates the bounce.
    const double through =
        room_.ThroughAmplitude(tx, s) * room_.ThroughAmplitude(s, rx);
    p.amplitude = -refl.reflectivity * config_.reflection_gain *
                  SpreadAmplitude(d) * through;
    p.kind = PathKind::kSpecular;
    p.face_index = static_cast<int>(fi);
    PushIfAudible(p, out);
  }
}

void PathSolver::AddSecondOrder(const Vec2& tx, const Vec2& rx,
                                PathSet& out) const {
  // Double bounces between the four room walls (faces 0..3): image of the
  // image. Obstacle faces are skipped to bound cost; their energy is mostly
  // captured by first-order + diffuse terms.
  const auto& faces = room_.reflectors();
  const std::size_t walls = std::min<std::size_t>(4, faces.size());
  for (std::size_t f1 = 0; f1 < walls; ++f1) {
    for (std::size_t f2 = 0; f2 < walls; ++f2) {
      if (f1 == f2) continue;
      const geom::Reflector& r1 = faces[f1];
      const geom::Reflector& r2 = faces[f2];
      const Vec2 image1 = geom::MirrorAcross(tx, r1.face);
      const Vec2 image2 = geom::MirrorAcross(image1, r2.face);
      const auto hit2 = geom::Intersect(Segment{image2, rx}, r2.face);
      if (!hit2) continue;
      const auto hit1 = geom::Intersect(Segment{image1, *hit2}, r1.face);
      if (!hit1) continue;
      const double d = geom::Distance(tx, *hit1) +
                       geom::Distance(*hit1, *hit2) +
                       geom::Distance(*hit2, rx);
      const double through = room_.ThroughAmplitude(tx, *hit1) *
                             room_.ThroughAmplitude(*hit1, *hit2) *
                             room_.ThroughAmplitude(*hit2, rx);
      Path p;
      p.length_m = d;
      p.amplitude = r1.reflectivity * r2.reflectivity *
                    config_.reflection_gain * SpreadAmplitude(d) * through;
      p.kind = PathKind::kSecondOrder;
      p.face_index = static_cast<int>(f1);
      PushIfAudible(p, out);
    }
  }
}

void PathSolver::AddDiffuse(const Vec2& tx, const Vec2& rx,
                            PathSet& out) const {
  const auto& faces = room_.reflectors();
  for (const ScatterPoint& sp : scatter_points_) {
    const geom::Reflector& refl = faces[static_cast<std::size_t>(
        sp.face_index)];
    const double d1 = geom::Distance(tx, sp.position);
    const double d2 = geom::Distance(sp.position, rx);
    // Both endpoints must be on the illuminated side of the face.
    const Vec2 n = refl.face.Normal();
    const double side_tx = n.Dot(tx - sp.position);
    const double side_rx = n.Dot(rx - sp.position);
    if (side_tx * side_rx <= 0) continue;
    const double through = room_.ThroughAmplitude(tx, sp.position) *
                           room_.ThroughAmplitude(sp.position, rx);
    Path p;
    p.length_m = d1 + d2;
    // Scatterers re-radiate: amplitude falls with both legs, scaled by the
    // material scattering coefficient and the per-point roughness weight.
    p.amplitude = -refl.scattering * sp.weight * config_.reflection_gain *
                  through /
                  std::max(d1 * d2, 0.05);
    p.kind = PathKind::kDiffuse;
    p.face_index = sp.face_index;
    PushIfAudible(p, out);
  }
}

}  // namespace bloc::chan
