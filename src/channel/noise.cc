#include "channel/noise.h"

#include <cmath>

namespace bloc::chan {

double NoiseConfig::NoiseVariance() const {
  // Unit-amplitude channel at 1 m (power 1.0) sees snr_at_1m_db.
  return std::pow(10.0, -snr_at_1m_db / 10.0);
}

dsp::cplx AddMeasurementNoise(dsp::cplx h, const NoiseConfig& config,
                              dsp::Rng& rng) {
  return h + rng.ComplexGaussian(config.NoiseVariance());
}

double RssiDb(dsp::cplx h, const NoiseConfig& config, dsp::Rng& rng) {
  const dsp::cplx noisy = AddMeasurementNoise(h, config, rng);
  const double power = std::norm(noisy);
  return 10.0 * std::log10(std::max(power, 1e-18));
}

}  // namespace bloc::chan
