// Propagation paths between a transmit and a receive point.
//
// Each path is characterized by its geometric length and a real, positive
// amplitude times a sign (reflections flip phase); the frequency-dependent
// part of the channel is exactly e^{-j 2 pi f d / c}, so the same PathSet
// evaluates coherently on every BLE band — the property BLoc's band
// stitching relies on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/types.h"
#include "geom/vec2.h"

namespace bloc::chan {

enum class PathKind : std::uint8_t {
  kDirect,
  kSpecular,       // single-bounce mirror reflection
  kSecondOrder,    // double-bounce wall reflection
  kDiffuse,        // scatter off a rough surface point
};

struct Path {
  double length_m = 0.0;
  /// Signed real amplitude: includes 1/d spreading, reflection and
  /// penetration losses; negative for phase-inverting reflections.
  double amplitude = 0.0;
  PathKind kind = PathKind::kDirect;
  /// Index of the reflector face involved (walls first), -1 for direct.
  int face_index = -1;
};

struct PathSet {
  std::vector<Path> paths;

  /// Evaluates the channel h(f) = sum_p a_p e^{-j 2 pi f d_p / c}.
  dsp::cplx Evaluate(double freq_hz) const;

  /// Evaluates h on a frequency comb f_k = f_start + k*f_step using an
  /// incremental complex rotor per path (one sincos pair per path instead of
  /// one per path per band).
  dsp::CVec EvaluateComb(double f_start_hz, double f_step_hz,
                         std::size_t count) const;

  /// Allocation-free EvaluateComb: overwrites `out` (out.size() comb bins)
  /// in caller-owned storage. Paths are processed in fixed-size lane chunks
  /// with the comb index as the outer loop, converting the per-path rotor
  /// recurrence from a latency-bound serial chain into a throughput-bound
  /// vectorizable inner loop; rotors renormalize periodically so long combs
  /// don't drift (parity vs per-bin Evaluate stays < 1e-9, see
  /// tests/test_channel.cc).
  void EvaluateCombInto(double f_start_hz, double f_step_hz,
                        std::span<dsp::cplx> out) const;

  /// Length of the shortest path, or +inf when empty.
  double ShortestLength() const;
  /// Amplitude-weighted strongest path.
  const Path* Strongest() const;
};

}  // namespace bloc::chan
