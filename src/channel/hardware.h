// Radio hardware impairments.
//
// The impairment BLoc is built around: every time a BLE radio retunes its
// local oscillator to a new frequency band, the PLL locks with a random
// phase, so measured channels carry e^{j(phi_T - phi_R)} garbage that changes
// per hop (paper Section 5.1). We also model carrier frequency offset and
// static per-antenna calibration error as optional extras.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/rng.h"
#include "dsp/types.h"

namespace bloc::chan {

struct ImpairmentConfig {
  /// Random LO phase per retune (the core BLE impairment). Disable only in
  /// unit tests that check the raw geometry.
  bool random_retune_phase = true;
  /// Std-dev of the carrier frequency offset in ppm of the carrier
  /// (crystal tolerance; BLE allows +/-50 ppm). Drawn once per device.
  double cfo_ppm_std = 0.0;
  /// Std-dev (radians) of a static per-antenna phase calibration error.
  double antenna_phase_error_std = 0.0;
};

/// The LO of one radio. All antennas of an anchor share one oscillator
/// (paper footnote 3), so AoA within an anchor survives the offset.
class Oscillator {
 public:
  Oscillator(const ImpairmentConfig& config, dsp::Rng rng,
             std::size_t num_antennas = 1);

  /// Simulates tuning to a (new) frequency: draws a fresh random LO phase.
  void Retune();

  /// Current LO phase in radians (common to all antennas).
  double phase() const { return phase_; }
  /// e^{j phase} including the static calibration error of `antenna`.
  dsp::cplx PhaseRotor(std::size_t antenna = 0) const;

  /// Carrier frequency offset of this radio at `carrier_hz`, in Hz.
  double CfoHz(double carrier_hz) const { return cfo_ppm_ * 1e-6 * carrier_hz; }

 private:
  ImpairmentConfig config_;
  dsp::Rng rng_;
  double phase_ = 0.0;
  double cfo_ppm_ = 0.0;
  std::vector<double> antenna_error_;
};

}  // namespace bloc::chan
