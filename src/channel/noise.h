// Receiver noise model.
//
// The noise floor is fixed at the receiver; the channel amplitude already
// contains 1/d spreading and obstacle losses, so links to far or obstructed
// targets naturally come out noisier. `snr_at_1m_db` anchors the scale: a
// clean free-space link at 1 m has that SNR.
#pragma once

#include "dsp/rng.h"
#include "dsp/types.h"

namespace bloc::chan {

struct NoiseConfig {
  double snr_at_1m_db = 35.0;

  /// Complex noise variance corresponding to the configured floor.
  double NoiseVariance() const;
};

/// Adds circularly-symmetric AWGN to a channel measurement.
dsp::cplx AddMeasurementNoise(dsp::cplx h, const NoiseConfig& config,
                              dsp::Rng& rng);

/// RSSI in dB (relative scale: 0 dB == unit channel amplitude) as reported
/// by a receiver, including the measurement noise. Multipath fading is
/// inherent because `h` is the full multipath channel.
double RssiDb(dsp::cplx h, const NoiseConfig& config, dsp::Rng& rng);

}  // namespace bloc::chan
