#include "channel/pathset.h"

#include <cmath>
#include <limits>

#include "dsp/complex_ops.h"

namespace bloc::chan {

using dsp::cplx;
using dsp::kSpeedOfLight;
using dsp::kTwoPi;

cplx PathSet::Evaluate(double freq_hz) const {
  cplx h{0.0, 0.0};
  for (const Path& p : paths) {
    const double phi = -kTwoPi * freq_hz * p.length_m / kSpeedOfLight;
    h += p.amplitude * dsp::Rotor(phi);
  }
  return h;
}

dsp::CVec PathSet::EvaluateComb(double f_start_hz, double f_step_hz,
                                std::size_t count) const {
  dsp::CVec out(count, cplx{0.0, 0.0});
  for (const Path& p : paths) {
    const double base_phi =
        -kTwoPi * f_start_hz * p.length_m / kSpeedOfLight;
    const double step_phi =
        -kTwoPi * f_step_hz * p.length_m / kSpeedOfLight;
    cplx rotor = p.amplitude * dsp::Rotor(base_phi);
    const cplx step = dsp::Rotor(step_phi);
    for (std::size_t k = 0; k < count; ++k) {
      out[k] += rotor;
      rotor *= step;
    }
  }
  return out;
}

double PathSet::ShortestLength() const {
  double best = std::numeric_limits<double>::infinity();
  for (const Path& p : paths) best = std::min(best, p.length_m);
  return best;
}

const Path* PathSet::Strongest() const {
  const Path* best = nullptr;
  for (const Path& p : paths) {
    if (best == nullptr || std::abs(p.amplitude) > std::abs(best->amplitude)) {
      best = &p;
    }
  }
  return best;
}

}  // namespace bloc::chan
