#include "channel/pathset.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dsp/complex_ops.h"

namespace bloc::chan {

using dsp::cplx;
using dsp::kSpeedOfLight;
using dsp::kTwoPi;

cplx PathSet::Evaluate(double freq_hz) const {
  cplx h{0.0, 0.0};
  for (const Path& p : paths) {
    const double phi = -kTwoPi * freq_hz * p.length_m / kSpeedOfLight;
    h += p.amplitude * dsp::Rotor(phi);
  }
  return h;
}

dsp::CVec PathSet::EvaluateComb(double f_start_hz, double f_step_hz,
                                std::size_t count) const {
  // Deliberately kept as the original serial rotor recurrence (one chain
  // per path): it is the reference EvaluateCombInto is tested against, and
  // the baseline the measurement simulator's reference kernels time.
  dsp::CVec out(count, cplx{0.0, 0.0});
  for (const Path& p : paths) {
    const double base_phi =
        -kTwoPi * f_start_hz * p.length_m / kSpeedOfLight;
    const double step_phi =
        -kTwoPi * f_step_hz * p.length_m / kSpeedOfLight;
    cplx rotor = p.amplitude * dsp::Rotor(base_phi);
    const cplx step = dsp::Rotor(step_phi);
    for (std::size_t k = 0; k < count; ++k) {
      out[k] += rotor;
      rotor *= step;
    }
  }
  return out;
}

void PathSet::EvaluateCombInto(double f_start_hz, double f_step_hz,
                               std::span<cplx> out) const {
  std::fill(out.begin(), out.end(), cplx{0.0, 0.0});
  // Lane chunks over paths, comb index outer: each comb step advances all
  // lanes' rotors independently, so the loop is limited by multiplier
  // throughput instead of the ~8-cycle latency of a serial rotor chain.
  constexpr std::size_t kLanes = 8;
  constexpr std::size_t kRenormInterval = 512;
  for (std::size_t p0 = 0; p0 < paths.size(); p0 += kLanes) {
    const std::size_t m = std::min(kLanes, paths.size() - p0);
    double rot_re[kLanes], rot_im[kLanes];    // amplitude * e^{j phi_k}
    double step_re[kLanes], step_im[kLanes];  // e^{j d_phi} per comb step
    double mag[kLanes];                       // |amplitude|: renorm target
    for (std::size_t l = 0; l < kLanes; ++l) {
      if (l < m) {
        const Path& p = paths[p0 + l];
        const double base_phi =
            -kTwoPi * f_start_hz * p.length_m / kSpeedOfLight;
        const double step_phi =
            -kTwoPi * f_step_hz * p.length_m / kSpeedOfLight;
        rot_re[l] = p.amplitude * std::cos(base_phi);
        rot_im[l] = p.amplitude * std::sin(base_phi);
        step_re[l] = std::cos(step_phi);
        step_im[l] = std::sin(step_phi);
        mag[l] = std::abs(p.amplitude);
      } else {
        // Idle lanes spin a zero rotor so the inner loop stays branch-free.
        rot_re[l] = rot_im[l] = 0.0;
        step_re[l] = 1.0;
        step_im[l] = 0.0;
        mag[l] = 0.0;
      }
    }
    std::size_t since_renorm = 0;
    for (std::size_t k = 0; k < out.size(); ++k) {
      double acc_re = 0.0;
      double acc_im = 0.0;
      for (std::size_t l = 0; l < kLanes; ++l) {
        acc_re += rot_re[l];
        acc_im += rot_im[l];
        const double r = rot_re[l] * step_re[l] - rot_im[l] * step_im[l];
        rot_im[l] = rot_re[l] * step_im[l] + rot_im[l] * step_re[l];
        rot_re[l] = r;
      }
      out[k] += cplx{acc_re, acc_im};
      if (++since_renorm == kRenormInterval) {
        since_renorm = 0;
        for (std::size_t l = 0; l < kLanes; ++l) {
          const double cur = std::hypot(rot_re[l], rot_im[l]);
          if (cur > 0.0) {
            const double scale = mag[l] / cur;
            rot_re[l] *= scale;
            rot_im[l] *= scale;
          }
        }
      }
    }
  }
}

double PathSet::ShortestLength() const {
  double best = std::numeric_limits<double>::infinity();
  for (const Path& p : paths) best = std::min(best, p.length_m);
  return best;
}

const Path* PathSet::Strongest() const {
  const Path* best = nullptr;
  for (const Path& p : paths) {
    if (best == nullptr || std::abs(p.amplitude) > std::abs(best->amplitude)) {
      best = &p;
    }
  }
  return best;
}

}  // namespace bloc::chan
