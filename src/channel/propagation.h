// Geometric path construction: direct path, image-method specular
// reflections (first and second order), and diffuse scatter sub-paths that
// model real reflectors as imperfect (the physical effect behind BLoc's
// spatial-entropy multipath test — reflections are spread out in space
// because different anchors/antennas see different parts of a reflector).
#pragma once

#include <cstddef>
#include <vector>

#include "channel/pathset.h"
#include "dsp/rng.h"
#include "geom/room.h"

namespace bloc::chan {

struct PropagationConfig {
  bool include_direct = true;
  bool include_specular = true;
  /// Double-bounce reflections between room walls (faces 0..3).
  bool include_second_order = true;
  bool include_diffuse = true;
  /// Scatter points sampled per reflecting face (fixed per scenario).
  std::size_t scatter_points_per_face = 4;
  /// Extra attenuation applied to all reflected/scattered paths.
  double reflection_gain = 1.0;
  /// Excess loss (dB) applied to every direct path: stands in for the
  /// out-of-plane clutter (floor/ceiling equipment, partial Fresnel-zone
  /// obstruction) a 2-D model cannot trace. This is what makes reflections
  /// "actually stronger than the line-of-sight path" (paper §1).
  double direct_excess_loss_db = 0.0;
  /// Std-dev (dB) of a lognormal shadowing term on the direct path, drawn
  /// deterministically from the endpoint positions so it is static for a
  /// static environment (same value on every band and round).
  double direct_shadowing_std_db = 0.0;
  /// Drop paths weaker than this fraction of the direct-free-space amplitude
  /// at the same total length (keeps PathSets small).
  double amplitude_floor = 1e-4;
};

/// Builds PathSets for point-to-point links inside a Room. The scatter-point
/// layout is sampled once at construction from `seed`, so all links (every
/// antenna, every band, every packet) see a consistent environment.
class PathSolver {
 public:
  PathSolver(const geom::Room& room, const PropagationConfig& config,
             std::uint64_t seed);

  /// All propagation paths from `tx` to `rx`.
  PathSet Solve(const geom::Vec2& tx, const geom::Vec2& rx) const;

  const PropagationConfig& config() const { return config_; }
  const geom::Room& room() const { return room_; }

 private:
  struct ScatterPoint {
    geom::Vec2 position;
    double weight = 1.0;       // per-point amplitude weight (rough surface)
    int face_index = -1;
  };

  void AddDirect(const geom::Vec2& tx, const geom::Vec2& rx,
                 PathSet& out) const;
  void AddSpecular(const geom::Vec2& tx, const geom::Vec2& rx,
                   PathSet& out) const;
  void AddSecondOrder(const geom::Vec2& tx, const geom::Vec2& rx,
                      PathSet& out) const;
  void AddDiffuse(const geom::Vec2& tx, const geom::Vec2& rx,
                  PathSet& out) const;
  void PushIfAudible(Path path, PathSet& out) const;

  const geom::Room& room_;
  PropagationConfig config_;
  std::uint64_t shadow_seed_ = 0;
  std::vector<ScatterPoint> scatter_points_;
};

}  // namespace bloc::chan
