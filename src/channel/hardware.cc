#include "channel/hardware.h"

#include "dsp/complex_ops.h"

namespace bloc::chan {

Oscillator::Oscillator(const ImpairmentConfig& config, dsp::Rng rng,
                       std::size_t num_antennas)
    : config_(config), rng_(rng.Fork("oscillator")) {
  cfo_ppm_ = rng_.Gaussian(config_.cfo_ppm_std);
  antenna_error_.resize(num_antennas, 0.0);
  if (config_.antenna_phase_error_std > 0) {
    for (double& e : antenna_error_) {
      e = rng_.Gaussian(config_.antenna_phase_error_std);
    }
  }
  Retune();
}

void Oscillator::Retune() {
  phase_ = config_.random_retune_phase ? rng_.Uniform(0.0, dsp::kTwoPi) : 0.0;
}

dsp::cplx Oscillator::PhaseRotor(std::size_t antenna) const {
  const double err =
      antenna < antenna_error_.size() ? antenna_error_[antenna] : 0.0;
  return dsp::Rotor(phase_ + err);
}

}  // namespace bloc::chan
