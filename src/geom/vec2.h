// Minimal 2-D vector algebra for the room geometry and ray tracing.
#pragma once

#include <cmath>

namespace bloc::geom {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  constexpr bool operator==(const Vec2& o) const = default;

  constexpr double Dot(const Vec2& o) const { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product; sign gives turn direction.
  constexpr double Cross(const Vec2& o) const { return x * o.y - y * o.x; }
  double Norm() const { return std::hypot(x, y); }
  constexpr double NormSq() const { return x * x + y * y; }

  Vec2 Normalized() const {
    const double n = Norm();
    return n > 0 ? Vec2{x / n, y / n} : Vec2{0, 0};
  }
  /// Counter-clockwise perpendicular.
  constexpr Vec2 Perp() const { return {-y, x}; }
  /// Angle from +x axis, in radians.
  double Angle() const { return std::atan2(y, x); }
};

constexpr Vec2 operator*(double s, const Vec2& v) { return v * s; }

inline double Distance(const Vec2& a, const Vec2& b) { return (a - b).Norm(); }

/// Rotates `v` by `radians` counter-clockwise.
inline Vec2 Rotate(const Vec2& v, double radians) {
  const double c = std::cos(radians);
  const double s = std::sin(radians);
  return {c * v.x - s * v.y, s * v.x + c * v.y};
}

}  // namespace bloc::geom
