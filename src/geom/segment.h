// Line segments: intersection tests, point reflection (image method) and
// projections. Walls, obstacle faces and rays are all segments.
#pragma once

#include <optional>

#include "geom/vec2.h"

namespace bloc::geom {

struct Segment {
  Vec2 a;
  Vec2 b;

  Vec2 Direction() const { return (b - a).Normalized(); }
  /// Unit normal (counter-clockwise perpendicular of the direction).
  Vec2 Normal() const { return Direction().Perp(); }
  double Length() const { return Distance(a, b); }
  Vec2 Midpoint() const { return (a + b) * 0.5; }
  /// Point at parameter t in [0, 1].
  Vec2 PointAt(double t) const { return a + (b - a) * t; }
};

/// Proper intersection of two segments (shared interior point). Endpoints
/// touching within `eps` do not count, so a ray grazing a wall corner is not
/// blocked. Returns the intersection point if any.
std::optional<Vec2> Intersect(const Segment& s1, const Segment& s2,
                              double eps = 1e-9);

/// True if the open segment (p, q) crosses `wall` (used for LOS blockage);
/// endpoints that lie exactly on the wall do not block.
bool SegmentCrosses(const Vec2& p, const Vec2& q, const Segment& wall,
                    double eps = 1e-9);

/// Mirror image of point `p` across the infinite line through `s`.
Vec2 MirrorAcross(const Vec2& p, const Segment& s);

/// Closest point on segment `s` to `p` (clamped to the segment).
Vec2 ClosestPointOn(const Segment& s, const Vec2& p);

/// Parameter t of the projection of `p` on the infinite line of `s`
/// (t=0 at s.a, t=1 at s.b), unclamped.
double ProjectParam(const Segment& s, const Vec2& p);

}  // namespace bloc::geom
