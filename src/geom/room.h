// The physical environment: a rectangular room whose walls reflect, plus
// rectangular obstacles (metal cupboards, robot racks ...) that both reflect
// strongly and attenuate paths passing through them. This models the
// "multipath-rich VICON room full of metallic objects" of the paper (§7).
#pragma once

#include <string>
#include <vector>

#include "geom/segment.h"
#include "geom/vec2.h"

namespace bloc::geom {

/// A flat reflecting face with material properties.
struct Reflector {
  Segment face;
  /// Fraction of incident amplitude reflected specularly (0..1).
  double reflectivity = 0.6;
  /// Fraction of incident amplitude re-radiated diffusely by surface
  /// roughness; spread across scatter points near the specular point.
  double scattering = 0.25;
  std::string label;
};

/// An axis-aligned rectangular obstacle. Its four faces are reflectors; any
/// path crossing its interior is attenuated by `through_loss_db` per face
/// crossed (metal => large loss, effectively blocking).
struct Obstacle {
  Vec2 min_corner;
  Vec2 max_corner;
  double reflectivity = 0.8;
  double scattering = 0.3;
  double through_loss_db = 15.0;
  std::string label;

  std::vector<Segment> Faces() const;
  bool Contains(const Vec2& p) const;
};

class Room {
 public:
  /// Builds a rectangular room [0,width] x [0,height] whose four walls are
  /// reflectors with the given material parameters.
  Room(double width, double height, double wall_reflectivity = 0.45,
       double wall_scattering = 0.2);

  void AddObstacle(const Obstacle& o);

  double width() const { return width_; }
  double height() const { return height_; }
  const std::vector<Obstacle>& obstacles() const { return obstacles_; }

  /// All reflecting faces: 4 walls plus every obstacle face.
  const std::vector<Reflector>& reflectors() const { return reflectors_; }

  bool Inside(const Vec2& p, double margin = 0.0) const;

  /// Amplitude factor (<= 1) for the straight path p -> q due to obstacle
  /// penetration: product of per-face through losses. 1.0 when unobstructed.
  double ThroughAmplitude(const Vec2& p, const Vec2& q) const;

  /// True if the straight path p -> q crosses no obstacle face.
  bool HasLineOfSight(const Vec2& p, const Vec2& q) const;

 private:
  double width_;
  double height_;
  std::vector<Obstacle> obstacles_;
  std::vector<Reflector> reflectors_;
};

}  // namespace bloc::geom
