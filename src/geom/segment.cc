#include "geom/segment.h"

#include <algorithm>
#include <cmath>

namespace bloc::geom {

std::optional<Vec2> Intersect(const Segment& s1, const Segment& s2,
                              double eps) {
  const Vec2 r = s1.b - s1.a;
  const Vec2 s = s2.b - s2.a;
  const double denom = r.Cross(s);
  if (std::abs(denom) < eps) return std::nullopt;  // parallel
  const Vec2 qp = s2.a - s1.a;
  const double t = qp.Cross(s) / denom;
  const double u = qp.Cross(r) / denom;
  if (t <= eps || t >= 1.0 - eps || u <= eps || u >= 1.0 - eps) {
    return std::nullopt;
  }
  return s1.a + r * t;
}

bool SegmentCrosses(const Vec2& p, const Vec2& q, const Segment& wall,
                    double eps) {
  return Intersect(Segment{p, q}, wall, eps).has_value();
}

Vec2 MirrorAcross(const Vec2& p, const Segment& s) {
  const Vec2 d = s.b - s.a;
  const double len_sq = d.NormSq();
  if (len_sq <= 0) return p;
  const double t = (p - s.a).Dot(d) / len_sq;
  const Vec2 foot = s.a + d * t;
  return foot * 2.0 - p;
}

Vec2 ClosestPointOn(const Segment& s, const Vec2& p) {
  const Vec2 d = s.b - s.a;
  const double len_sq = d.NormSq();
  if (len_sq <= 0) return s.a;
  const double t = std::clamp((p - s.a).Dot(d) / len_sq, 0.0, 1.0);
  return s.a + d * t;
}

double ProjectParam(const Segment& s, const Vec2& p) {
  const Vec2 d = s.b - s.a;
  const double len_sq = d.NormSq();
  if (len_sq <= 0) return 0.0;
  return (p - s.a).Dot(d) / len_sq;
}

}  // namespace bloc::geom
