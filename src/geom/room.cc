#include "geom/room.h"

#include <cmath>
#include <stdexcept>

namespace bloc::geom {

std::vector<Segment> Obstacle::Faces() const {
  const Vec2 p0 = min_corner;
  const Vec2 p1{max_corner.x, min_corner.y};
  const Vec2 p2 = max_corner;
  const Vec2 p3{min_corner.x, max_corner.y};
  return {{p0, p1}, {p1, p2}, {p2, p3}, {p3, p0}};
}

bool Obstacle::Contains(const Vec2& p) const {
  return p.x >= min_corner.x && p.x <= max_corner.x && p.y >= min_corner.y &&
         p.y <= max_corner.y;
}

Room::Room(double width, double height, double wall_reflectivity,
           double wall_scattering)
    : width_(width), height_(height) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("Room: non-positive dimensions");
  }
  const Vec2 c0{0, 0}, c1{width, 0}, c2{width, height}, c3{0, height};
  const auto wall = [&](Vec2 a, Vec2 b, const char* label) {
    reflectors_.push_back(
        {Segment{a, b}, wall_reflectivity, wall_scattering, label});
  };
  wall(c0, c1, "wall-south");
  wall(c1, c2, "wall-east");
  wall(c2, c3, "wall-north");
  wall(c3, c0, "wall-west");
}

void Room::AddObstacle(const Obstacle& o) {
  if (o.max_corner.x <= o.min_corner.x || o.max_corner.y <= o.min_corner.y) {
    throw std::invalid_argument("AddObstacle: degenerate rectangle");
  }
  obstacles_.push_back(o);
  for (const Segment& face : o.Faces()) {
    reflectors_.push_back({face, o.reflectivity, o.scattering, o.label});
  }
}

bool Room::Inside(const Vec2& p, double margin) const {
  return p.x >= margin && p.x <= width_ - margin && p.y >= margin &&
         p.y <= height_ - margin;
}

double Room::ThroughAmplitude(const Vec2& p, const Vec2& q) const {
  double loss_db = 0.0;
  for (const Obstacle& o : obstacles_) {
    for (const Segment& face : o.Faces()) {
      if (SegmentCrosses(p, q, face)) loss_db += o.through_loss_db;
    }
  }
  return std::pow(10.0, -loss_db / 20.0);
}

bool Room::HasLineOfSight(const Vec2& p, const Vec2& q) const {
  for (const Obstacle& o : obstacles_) {
    for (const Segment& face : o.Faces()) {
      if (SegmentCrosses(p, q, face)) return false;
    }
  }
  return true;
}

}  // namespace bloc::geom
